package buildsys

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEnvironments(t *testing.T) {
	w := Workstation()
	if w.Slots != WorkstationSlots || w.MemLimit != 0 {
		t.Errorf("Workstation = %+v", *w)
	}
	d := Distributed()
	if d.Slots != DistributedSlots || d.MemLimit != DistributedMemLimit || d.PoolMem != DistributedPoolMem {
		t.Errorf("Distributed = %+v", *d)
	}
	if DistributedMemLimit != 12<<30 {
		t.Errorf("fleet ceiling = %d, want 12GB", int64(DistributedMemLimit))
	}
	if SuperrootMemLimit <= DistributedMemLimit {
		t.Error("high-memory pool not above the standard ceiling")
	}
	// The pool budget admits full-slot occupancy of ordinary actions but
	// deliberately not of ceiling-class ones.
	if DistributedPoolMem >= int64(DistributedSlots)*DistributedMemLimit {
		t.Error("pool budget admits every slot at the per-action ceiling; fleet pressure unmodeled")
	}
	if DistributedPoolMem <= 2*DistributedMemLimit {
		t.Error("pool budget implausibly tight")
	}
}

func TestPoolAdmissionRejectsUnschedulable(t *testing.T) {
	// An action below the per-action ceiling but above the whole pool's
	// budget can never start; the batch is refused up front.
	e := &Executor{Slots: 4, MemLimit: 8 << 30, PoolMem: 4 << 30}
	ran := false
	a := &Action{Name: "wide", Cost: 1, MemBytes: 6 << 30, Run: func() error { ran = true; return nil }}
	_, err := e.Execute([]*Action{a})
	if err == nil {
		t.Fatal("unschedulable action admitted")
	}
	if ran {
		t.Error("rejected action still ran")
	}
	if !strings.Contains(err.Error(), "pool") || !strings.Contains(err.Error(), "wide") {
		t.Errorf("undescriptive rejection: %v", err)
	}
	// At exactly the pool budget it is schedulable (serially).
	a.MemBytes = 4 << 30
	stats, err := e.Execute([]*Action{a, {Name: "peer", Cost: 1, MemBytes: 4 << 30}})
	if err != nil {
		t.Fatalf("at-budget actions refused: %v", err)
	}
	if stats.PeakConcurrentMem != 4<<30 {
		t.Errorf("PeakConcurrentMem = %d, want one action's worth", stats.PeakConcurrentMem)
	}
	if stats.StallSeconds != 1 {
		t.Errorf("StallSeconds = %v, want 1 (second action waits out the first)", stats.StallSeconds)
	}
	if stats.Makespan != 2 {
		t.Errorf("Makespan = %v, want 2 (forced serial)", stats.Makespan)
	}
}

func TestAdmissionControlBoundary(t *testing.T) {
	e := &Executor{Slots: 4, MemLimit: 1 << 30}
	ran := false
	at := func(mem int64) *Action {
		return &Action{Name: "probe", Cost: 1, MemBytes: mem, Run: func() error { ran = true; return nil }}
	}
	// Exactly at the ceiling: admitted.
	if _, err := e.Execute([]*Action{at(1 << 30)}); err != nil || !ran {
		t.Fatalf("at-ceiling action: err=%v ran=%v", err, ran)
	}
	// One byte over: the batch is refused and nothing runs.
	ran = false
	_, err := e.Execute([]*Action{at(1<<30 + 1)})
	if err == nil {
		t.Fatal("over-ceiling action admitted")
	}
	if ran {
		t.Error("rejected action still ran")
	}
	if !strings.Contains(err.Error(), "probe") || !strings.Contains(err.Error(), "ceiling") {
		t.Errorf("undescriptive rejection: %v", err)
	}
	// No ceiling (workstation model): the same action is fine.
	if _, err := (&Executor{Slots: 4}).Execute([]*Action{at(1<<30 + 1)}); err != nil {
		t.Errorf("unlimited executor rejected action: %v", err)
	}
}

func TestRejectionPreemptsAllWork(t *testing.T) {
	// An oversized action anywhere in the batch keeps the whole batch
	// from starting: the build system schedules all-or-nothing.
	var ran atomic.Int32
	ok := &Action{Name: "small", Cost: 1, MemBytes: 1, Run: func() error { ran.Add(1); return nil }}
	big := &Action{Name: "bolt", Cost: 1, MemBytes: 36 << 30, Run: func() error { ran.Add(1); return nil }}
	if _, err := Distributed().Execute([]*Action{ok, big, ok}); err == nil {
		t.Fatal("batch with oversized action admitted")
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d actions ran from a rejected batch", n)
	}
}

func TestExecuteRunsAllAndBoundsParallelism(t *testing.T) {
	const slots = 3
	e := &Executor{Slots: slots}
	var running, peak, count atomic.Int32
	var mu sync.Mutex
	actions := make([]*Action, 20)
	for i := range actions {
		actions[i] = &Action{Name: "a", Cost: 0.1, MemBytes: 1, Run: func() error {
			cur := running.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			for j := 0; j < 1000; j++ {
				_ = j // busy enough for workers to overlap
			}
			running.Add(-1)
			count.Add(1)
			return nil
		}}
	}
	stats, err := e.Execute(actions)
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 20 {
		t.Errorf("ran %d of 20 actions", count.Load())
	}
	if p := peak.Load(); p > slots {
		t.Errorf("observed %d concurrent actions, pool bound is %d", p, slots)
	}
	if stats.Actions != 20 || stats.Slots != slots {
		t.Errorf("stats = %+v", stats)
	}
}

func TestExecuteFirstErrorDeterministic(t *testing.T) {
	errA := errors.New("boom-a")
	errB := errors.New("boom-b")
	actions := []*Action{
		{Name: "ok", Cost: 1, Run: func() error { return nil }},
		{Name: "first-fail", Cost: 1, Run: func() error { return errA }},
		{Name: "second-fail", Cost: 1, Run: func() error { return errB }},
	}
	for i := 0; i < 20; i++ { // goroutine interleaving must not matter
		_, err := (&Executor{Slots: 8}).Execute(actions)
		if !errors.Is(err, errA) {
			t.Fatalf("run %d: err = %v, want the submission-order first failure %v", i, err, errA)
		}
		if !strings.Contains(err.Error(), "first-fail") {
			t.Fatalf("error does not name the failing action: %v", err)
		}
	}
}

func TestExecuteEmptyAndNilRun(t *testing.T) {
	stats, err := Distributed().Execute(nil)
	if err != nil || stats.Actions != 0 || stats.Makespan != 0 || stats.PeakActionMem != 0 {
		t.Errorf("empty batch: stats=%+v err=%v", stats, err)
	}
	// A nil Run is a pure cost-model action (e.g. modeling remote work).
	stats, err = Distributed().Execute([]*Action{{Name: "modeled", Cost: 2.5, MemBytes: 5}})
	if err != nil || stats.TotalCost != 2.5 || stats.PeakActionMem != 5 {
		t.Errorf("nil-Run action: stats=%+v err=%v", stats, err)
	}
}

func TestExecStatsAccounting(t *testing.T) {
	actions := []*Action{
		{Name: "a", Cost: 1, MemBytes: 100},
		{Name: "b", Cost: 2, MemBytes: 700},
		{Name: "c", Cost: 3, MemBytes: 300},
	}
	stats, err := (&Executor{Slots: 2}).Execute(actions)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalCost != 6 {
		t.Errorf("TotalCost = %v, want 6", stats.TotalCost)
	}
	if stats.PeakActionMem != 700 {
		t.Errorf("PeakActionMem = %d, want 700", stats.PeakActionMem)
	}
	// List scheduling on 2 slots: a→s0, b→s1, c→s0(free at 1) ⇒ finish 4.
	if stats.Makespan != 4 {
		t.Errorf("Makespan = %v, want 4", stats.Makespan)
	}
}

func TestExecuteCriticalPathImprovesBimodalMakespan(t *testing.T) {
	// A warm relink's batch: one expensive rebuilt module behind a crowd
	// of near-free cache fetches. FIFO list scheduling queues the long
	// action behind the crowd; LPT starts it at t=0.
	var actions []*Action
	for i := 0; i < 8; i++ {
		actions = append(actions, &Action{Name: "fetch", Cost: 1})
	}
	long := &Action{Name: "rebuild", Cost: 10}
	actions = append(actions, long)

	e := &Executor{Slots: 2}
	fifo, err := e.Execute(actions)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := e.ExecuteCriticalPath(actions)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: 8 fetches over 2 slots (4s), then the rebuild → 14s.
	// LPT: rebuild starts at t=0 on one slot, fetches fill the other → 10s.
	if fifo.Makespan != 14 {
		t.Errorf("FIFO makespan = %v, want 14", fifo.Makespan)
	}
	if lpt.Makespan != 10 {
		t.Errorf("LPT makespan = %v, want 10", lpt.Makespan)
	}
	if lpt.TotalCost != fifo.TotalCost || lpt.Actions != fifo.Actions {
		t.Errorf("LPT changed the work accounting: %+v vs %+v", lpt, fifo)
	}
	// The caller's slice must not be reordered.
	if actions[len(actions)-1] != long {
		t.Error("ExecuteCriticalPath mutated the caller's action order")
	}
}

func TestExecuteCriticalPathRunsEverythingDeterministically(t *testing.T) {
	var ran int32
	var actions []*Action
	for i := 0; i < 20; i++ {
		cost := float64(i % 3)
		actions = append(actions, &Action{
			Name: "a",
			Cost: cost,
			Run:  func() error { atomic.AddInt32(&ran, 1); return nil },
		})
	}
	e := &Executor{Slots: 4}
	s1, err := e.ExecuteCriticalPath(actions)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.ExecuteCriticalPath(actions)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&ran) != 40 {
		t.Errorf("ran %d actions, want 40", ran)
	}
	if s1.Makespan != s2.Makespan || s1.TotalCost != s2.TotalCost {
		t.Errorf("non-deterministic stats: %+v vs %+v", s1, s2)
	}
}

// Package buildsys models the distributed build system the paper's
// argument rests on (§2.1, §3.4–3.5): a fleet of build workers with
//
//   - a two-tier content-addressed action cache shared across builds and
//     phases: a size-capped local LRU tier on each worker, written
//     through to a fleet-wide remote tier whose fetches cost modeled
//     time — so unchanged work is never redone (the >90% hit rates of
//     §2.1) but warm-but-remote rebuilds are cheap, not free;
//
//   - admission control with a hard per-action RAM ceiling (~12GB on the
//     shared fleet) that a monolithic post-link rewriter cannot fit while
//     every sharded Propeller action does, plus a pool-wide concurrent
//     RSS budget that bounds how many ceiling-class actions run at once;
//
//   - a deterministic time model: actions carry modeled single-core Cost
//     seconds, and the executor list-schedules them over its slots under
//     the memory budget, so makespans for Table 5 / Fig 9 are
//     byte-identical across runs and machines instead of depending on
//     wall clocks.
//
// Action Run closures still execute for real — on a goroutine pool
// bounded by the executor's slot count — only the reported *times* are
// modeled.
package buildsys

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key hashes the given parts into a content-address. Parts are
// length-prefixed before hashing so the boundary between parts is part of
// the identity: Key([]byte("ab"), []byte("c")) differs from
// Key([]byte("a"), []byte("bc")).
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KeyStrings is Key over string parts.
func KeyStrings(parts ...string) string {
	bs := make([][]byte, len(parts))
	for i, s := range parts {
		bs[i] = []byte(s)
	}
	return Key(bs...)
}

// CacheStats is a point-in-time snapshot of a Cache's counters. Entries
// and Bytes describe the local tier only; the remote tier is shared and
// reports its own totals (Remote.Len, Remote.Bytes).
type CacheStats struct {
	Hits          int64 // Gets served, by either tier
	Misses        int64 // Gets served by neither tier
	Entries       int   // artifacts resident in the local tier
	Bytes         int64 // bytes resident in the local tier
	Evictions     int64 // artifacts evicted from the local tier
	EvictedBytes  int64 // bytes evicted from the local tier
	RemoteFetches int64 // Gets that fell through to the remote tier
	RemoteBytes   int64 // bytes fetched from the remote tier
}

// Cache is a content-addressed artifact store (the IR and object caches
// of Phases 1–2, consulted again by the Phase-4 relink). The local tier
// holds up to budget bytes in LRU order; when a remote tier is attached,
// Puts write through to it and Gets that miss locally fall through,
// charging the modeled fetch latency to the requesting action (GetCost).
// It is safe for concurrent use: codegen actions running in parallel on
// the executor read and write it directly.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // local-tier byte cap; 0 = unbounded
	remote  *Remote
	entries map[string]*lruEntry
	lru     lruList

	hits          int64
	misses        int64
	liveBytes     int64
	evictions     int64
	evictedBytes  int64
	remoteFetches int64
	remoteBytes   int64
}

// NewCache returns an empty unbounded single-tier cache (a dedicated
// machine's local store, the PR-1 behavior).
func NewCache() *Cache {
	return &Cache{entries: map[string]*lruEntry{}}
}

// NewCacheWithBudget returns a cache whose local tier evicts
// least-recently-touched artifacts to stay within budget bytes. budget
// <= 0 means unbounded. Without a remote tier, evicted artifacts are
// simply gone (subsequent Gets miss).
func NewCacheWithBudget(budget int64) *Cache {
	c := NewCache()
	if budget > 0 {
		c.budget = budget
	}
	return c
}

// NewTieredCache returns the §2.1 two-tier configuration: a budget-capped
// local LRU tier written through to the shared remote tier.
func NewTieredCache(budget int64, remote *Remote) *Cache {
	c := NewCacheWithBudget(budget)
	c.remote = remote
	return c
}

// Get returns a copy of the artifact stored under key, consulting the
// local tier first and falling through to the remote tier. The copy
// keeps callers from aliasing cache-owned memory (decoding an object in
// one action must not be able to corrupt another action's fetch). Use
// GetCost when the caller is an action that must pay for remote fetches.
func (c *Cache) Get(key string) ([]byte, bool) {
	data, _, ok := c.GetCost(key)
	return data, ok
}

// GetCost is Get plus the modeled seconds the fetch costs the requesting
// action: zero on a local hit or a miss, the remote tier's fetch latency
// when the artifact had to cross the network. A remote hit re-admits the
// artifact into the local tier (evicting under the budget as needed), so
// repeated Gets pay the network once.
func (c *Cache) GetCost(key string) ([]byte, float64, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.moveToFront(e)
		out := cloneBytes(e.data)
		c.mu.Unlock()
		return out, 0, true
	}
	remote := c.remote
	if remote == nil {
		c.misses++
		c.mu.Unlock()
		return nil, 0, false
	}
	c.mu.Unlock()

	data, ok := remote.get(key) // remote holds its own lock
	cost := remote.FetchCost(int64(len(data)))

	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.remoteFetches++
	c.remoteBytes += int64(len(data))
	// Re-admit locally unless a concurrent Get or Put beat us to it.
	if _, exists := c.entries[key]; !exists {
		c.insertLocked(key, cloneBytes(data))
		c.evictLocked()
	}
	return cloneBytes(data), cost, true
}

// Put stores a copy of data under key, writing through to the remote
// tier when one is attached. Content addressing makes overwrites
// idempotent by construction, so Put does not distinguish insert from
// replace.
func (c *Cache) Put(key string, data []byte) {
	stored := cloneBytes(data)
	if c.remote != nil {
		// Write-through: the remote tier shares the private copy, which
		// is never mutated after this point.
		c.remote.putShared(key, stored)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.liveBytes += int64(len(stored)) - int64(len(e.data))
		e.data = stored
		c.lru.moveToFront(e)
	} else {
		c.insertLocked(key, stored)
	}
	c.evictLocked()
}

// insertLocked adds a fresh most-recently-used entry. Caller holds mu.
func (c *Cache) insertLocked(key string, stored []byte) {
	e := &lruEntry{key: key, data: stored}
	c.entries[key] = e
	c.lru.pushFront(e)
	c.liveBytes += int64(len(stored))
}

// evictLocked drops least-recently-touched entries until the local tier
// fits its budget. Caller holds mu.
func (c *Cache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.liveBytes > c.budget && c.lru.back != nil {
		victim := c.lru.back
		c.lru.remove(victim)
		delete(c.entries, victim.key)
		c.liveBytes -= int64(len(victim.data))
		c.evictions++
		c.evictedBytes += int64(len(victim.data))
	}
}

// Contains reports whether key is present in either tier without
// touching the hit/miss counters or recency order (an existence probe,
// not a fetch).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	return c.remote != nil && c.remote.Contains(key)
}

// Len returns the number of artifacts resident in the local tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cache's counters. It is how the cold-object-reuse
// story of Fig 9 — and the eviction/remote-fetch economics behind it —
// is observed by tests and reports.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Entries:       len(c.entries),
		Bytes:         c.liveBytes,
		Evictions:     c.evictions,
		EvictedBytes:  c.evictedBytes,
		RemoteFetches: c.remoteFetches,
		RemoteBytes:   c.remoteBytes,
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

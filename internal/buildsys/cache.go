// Package buildsys models the distributed build system the paper's
// argument rests on (§2.1, §3.4–3.5): a fleet of build workers with
//
//   - content-addressed action caches shared across builds and phases,
//     so unchanged work is never redone (the >90% hit rates of §2.1 that
//     make Phase-4 cold-object reuse nearly free);
//
//   - admission control with a hard per-action RAM ceiling (~12GB on the
//     shared fleet) that a monolithic post-link rewriter cannot fit while
//     every sharded Propeller action does;
//
//   - a deterministic time model: actions carry modeled single-core Cost
//     seconds, and the executor list-schedules them over its slots, so
//     makespans for Table 5 / Fig 9 are byte-identical across runs and
//     machines instead of depending on wall clocks.
//
// Action Run closures still execute for real — on a goroutine pool
// bounded by the executor's slot count — only the reported *times* are
// modeled.
package buildsys

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key hashes the given parts into a content-address. Parts are
// length-prefixed before hashing so the boundary between parts is part of
// the identity: Key([]byte("ab"), []byte("c")) differs from
// Key([]byte("a"), []byte("bc")).
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KeyStrings is Key over string parts.
func KeyStrings(parts ...string) string {
	bs := make([][]byte, len(parts))
	for i, s := range parts {
		bs[i] = []byte(s)
	}
	return Key(bs...)
}

// Cache is a content-addressed artifact store (the IR and object caches
// of Phases 1–2, consulted again by the Phase-4 relink). It is safe for
// concurrent use: codegen actions running in parallel on the executor
// read and write it directly.
type Cache struct {
	mu      sync.RWMutex
	entries map[string][]byte

	hits      int64
	misses    int64
	liveBytes int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string][]byte{}}
}

// Get returns a copy of the artifact stored under key. The copy keeps
// callers from aliasing cache-owned memory (decoding an object in one
// action must not be able to corrupt another action's fetch).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	out := make([]byte, len(data))
	copy(out, data)
	return out, true
}

// Put stores a copy of data under key. Content addressing makes
// overwrites idempotent by construction, so Put does not distinguish
// insert from replace.
func (c *Cache) Put(key string, data []byte) {
	stored := make([]byte, len(data))
	copy(stored, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.liveBytes -= int64(len(old))
	}
	c.entries[key] = stored
	c.liveBytes += int64(len(stored))
}

// Contains reports whether key is present without touching the hit/miss
// counters (an existence probe, not a fetch).
func (c *Cache) Contains(key string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of stored artifacts.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the fetch counters and current contents: Get hits, Get
// misses, stored artifact count, and stored bytes. It is how the
// cold-object-reuse story of Fig 9 is observed by tests and reports.
func (c *Cache) Stats() (hits, misses int64, entries int, bytes int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses, len(c.entries), c.liveBytes
}

// Package bbaddrmap implements the Basic Block Address Map, the profile
// mapping metadata of the paper's Phase 2 (§3.2), mirroring LLVM's
// SHT_LLVM_BB_ADDR_MAP section.
//
// For each function the map records, per machine basic block: the stable
// block ID, the offset of the block from the function entry, its size, and
// flags (fall-through successor present, landing pad, has return, has call).
// Phase 3 uses it to map sampled virtual addresses back to machine basic
// blocks without disassembling anything.
package bbaddrmap

import (
	"encoding/binary"
	"fmt"
)

// BlockFlags describe block characteristics stored alongside the offsets.
type BlockFlags byte

const (
	// FlagFallThrough marks blocks whose layout successor is also a CFG
	// successor reached without a taken branch.
	FlagFallThrough BlockFlags = 1 << iota
	// FlagLandingPad marks exception landing pads.
	FlagLandingPad
	// FlagReturn marks blocks ending in a return.
	FlagReturn
	// FlagCall marks blocks containing at least one call.
	FlagCall
)

// BlockEntry describes one machine basic block within a function.
type BlockEntry struct {
	ID     int    // stable IR block ID
	Offset uint64 // offset of the block from the function entry address
	Size   uint64 // size of the block in bytes
	Flags  BlockFlags
}

// FuncEntry is the address-map record for one function.
type FuncEntry struct {
	Name string
	Addr uint64 // function entry address; section-relative in objects,
	// absolute once linked
	Blocks []BlockEntry
}

// Map is the decoded contents of a BB address map section.
type Map struct {
	Funcs []FuncEntry
}

// Encode serializes the map to the section byte format.
func Encode(m *Map) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		out = binary.AppendUvarint(out, uint64(len(f.Name)))
		out = append(out, f.Name...)
		out = binary.AppendUvarint(out, f.Addr)
		out = binary.AppendUvarint(out, uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			out = binary.AppendUvarint(out, uint64(b.ID))
			out = binary.AppendUvarint(out, b.Offset)
			out = binary.AppendUvarint(out, b.Size)
			out = append(out, byte(b.Flags))
		}
	}
	return out
}

// Decode parses a section previously produced by Encode.
func Decode(data []byte) (*Map, error) {
	m := &Map{}
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bbaddrmap: truncated at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	nFuncs, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nFuncs > 1<<26 {
		return nil, fmt.Errorf("bbaddrmap: implausible function count %d", nFuncs)
	}
	for i := uint64(0); i < nFuncs; i++ {
		var f FuncEntry
		nameLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(nameLen) > len(data) {
			return nil, fmt.Errorf("bbaddrmap: truncated name at offset %d", pos)
		}
		f.Name = string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		if f.Addr, err = readUvarint(); err != nil {
			return nil, err
		}
		nBlocks, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nBlocks > 1<<26 {
			return nil, fmt.Errorf("bbaddrmap: implausible block count %d", nBlocks)
		}
		f.Blocks = make([]BlockEntry, 0, nBlocks)
		for j := uint64(0); j < nBlocks; j++ {
			var b BlockEntry
			id, err := readUvarint()
			if err != nil {
				return nil, err
			}
			b.ID = int(id)
			if b.Offset, err = readUvarint(); err != nil {
				return nil, err
			}
			if b.Size, err = readUvarint(); err != nil {
				return nil, err
			}
			if pos >= len(data) {
				return nil, fmt.Errorf("bbaddrmap: truncated flags at offset %d", pos)
			}
			b.Flags = BlockFlags(data[pos])
			pos++
			f.Blocks = append(f.Blocks, b)
		}
		m.Funcs = append(m.Funcs, f)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("bbaddrmap: %d trailing bytes", len(data)-pos)
	}
	return m, nil
}

// Rebase returns a copy of the map with delta added to every function
// address. The linker uses this when placing sections at final addresses.
func (m *Map) Rebase(delta uint64) *Map {
	out := &Map{Funcs: make([]FuncEntry, len(m.Funcs))}
	for i, f := range m.Funcs {
		nf := f
		nf.Addr = f.Addr + delta
		nf.Blocks = append([]BlockEntry(nil), f.Blocks...)
		out.Funcs[i] = nf
	}
	return out
}

// Merge concatenates several maps into one.
func Merge(maps ...*Map) *Map {
	out := &Map{}
	for _, m := range maps {
		out.Funcs = append(out.Funcs, m.Funcs...)
	}
	return out
}

// Lookup is an address→block index built from a Map, used by Phase 3 to
// resolve LBR sample addresses to (function, block ID) pairs.
type Lookup struct {
	funcs []lookupFunc // sorted by Start
}

type lookupFunc struct {
	Start, End uint64
	Entry      *FuncEntry
	blocks     []lookupBlock // sorted by Start
}

type lookupBlock struct {
	Start, End uint64
	ID         int
	Flags      BlockFlags
}

// NewLookup builds an address index over the map. Functions and blocks with
// zero size are still indexed (as empty ranges that never match).
func NewLookup(m *Map) *Lookup {
	l := &Lookup{}
	for i := range m.Funcs {
		f := &m.Funcs[i]
		var end uint64 = f.Addr
		lf := lookupFunc{Start: f.Addr, Entry: f}
		for _, b := range f.Blocks {
			start := f.Addr + b.Offset
			bend := start + b.Size
			if bend > end {
				end = bend
			}
			lf.blocks = append(lf.blocks, lookupBlock{Start: start, End: bend, ID: b.ID, Flags: b.Flags})
		}
		lf.End = end
		l.funcs = append(l.funcs, lf)
	}
	sortFuncs(l.funcs)
	for i := range l.funcs {
		sortBlocks(l.funcs[i].blocks)
	}
	return l
}

func sortFuncs(fs []lookupFunc) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Start < fs[j-1].Start; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func sortBlocks(bs []lookupBlock) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Start < bs[j-1].Start; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// blockCovering binary-searches blocks (sorted by Start) for the one
// covering addr, returning its index or -1. Zero-size blocks never cover
// anything and are skipped; non-empty blocks are disjoint, so the last
// block starting at or before addr is the only candidate.
func blockCovering(bs []lookupBlock, addr uint64) int {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo - 1; i >= 0; i-- {
		b := &bs[i]
		if addr < b.End {
			return i
		}
		if b.Start < b.End {
			// A non-empty block entirely before addr: with disjoint
			// blocks, nothing earlier can reach past it.
			return -1
		}
		// Zero-size block at or before addr: keep walking.
	}
	return -1
}

// firstBlockFrom returns the index of the first block with Start >= start
// (possibly len(bs)).
func firstBlockFrom(bs []lookupBlock, start uint64) int {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid].Start < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Resolve maps an address to the containing function name and block ID.
// ok is false when the address is not covered by any recorded block.
func (l *Lookup) Resolve(addr uint64) (fn string, blockID int, ok bool) {
	// Binary search the function list for the last Start <= addr.
	lo, hi := 0, len(l.funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.funcs[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Blocks of one function can interleave with another function's range
	// only if sections were split; scan backwards over candidates.
	for i := lo - 1; i >= 0; i-- {
		f := &l.funcs[i]
		if addr >= f.End {
			// Functions are sorted by start; earlier ones may still cover
			// addr if this one is short, so keep scanning a little.
			if i < lo-8 {
				break
			}
			continue
		}
		if bi := blockCovering(f.blocks, addr); bi >= 0 {
			return f.Entry.Name, f.blocks[bi].ID, true
		}
	}
	return "", 0, false
}

// ResolveFull is Resolve plus the block's address bounds.
func (l *Lookup) ResolveFull(addr uint64) (ref BlockRef, start, end uint64, ok bool) {
	lo, hi := 0, len(l.funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.funcs[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo - 1; i >= 0 && i >= lo-8; i-- {
		f := &l.funcs[i]
		if addr >= f.End {
			continue
		}
		if bi := blockCovering(f.blocks, addr); bi >= 0 {
			b := &f.blocks[bi]
			return BlockRef{Fn: f.Entry.Name, ID: b.ID}, b.Start, b.End, true
		}
	}
	return BlockRef{}, 0, 0, false
}

// BlockRef identifies a block: owning function name and stable block ID.
type BlockRef struct {
	Fn string
	ID int
}

// IsBlockStart reports whether addr is exactly the first byte of a block,
// returning the block. Branch targets always land on block starts; return
// addresses usually do not — Phase 3 uses this to tell intra-function
// branch edges apart from returns.
func (l *Lookup) IsBlockStart(addr uint64) (BlockRef, bool) {
	lo, hi := 0, len(l.funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.funcs[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo - 1; i >= 0 && i >= lo-8; i-- {
		f := &l.funcs[i]
		if addr >= f.End {
			continue
		}
		if bi := firstBlockFrom(f.blocks, addr); bi < len(f.blocks) && f.blocks[bi].Start == addr {
			return BlockRef{Fn: f.Entry.Name, ID: f.blocks[bi].ID}, true
		}
	}
	return BlockRef{}, false
}

// BlocksInRange returns, in address order, every block whose start address
// lies in [start, end]. Phase 3 walks the range between consecutive LBR
// records with this to credit fall-through execution.
func (l *Lookup) BlocksInRange(start, end uint64) []BlockRef {
	return l.BlocksInRangeAppend(nil, start, end)
}

// BlocksInRangeAppend is BlocksInRange appending into dst — the
// zero-allocation form the sample-aggregation hot loop calls with a
// reused scratch slice (one fall-through range is resolved per LBR
// record, so a fresh slice per call is the analyzer's top allocation
// site).
func (l *Lookup) BlocksInRangeAppend(dst []BlockRef, start, end uint64) []BlockRef {
	if end < start {
		return dst
	}
	// Fragments are sorted by start; find the first candidate and walk
	// forward until fragments begin past the range end.
	lo, hi := 0, len(l.funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.funcs[mid].Start <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	first := lo - 1
	if first < 0 {
		first = 0
	}
	for i := first; i < len(l.funcs); i++ {
		f := &l.funcs[i]
		if f.Start > end {
			break
		}
		if f.End <= start {
			continue
		}
		for bi := firstBlockFrom(f.blocks, start); bi < len(f.blocks); bi++ {
			b := &f.blocks[bi]
			if b.Start > end {
				break
			}
			dst = append(dst, BlockRef{Fn: f.Entry.Name, ID: b.ID})
		}
	}
	return dst
}

// Resolver memoizes a Lookup's three hot resolution operations behind
// small direct-mapped caches. Phase 3 resolves two addresses and one
// fall-through range per LBR record, and the record stream revisits the
// same branch sites constantly (a loop's sampled branches repeat for as
// long as the loop runs), so most binary searches are re-deriving an
// answer the resolver has already produced. A cache hit is one
// multiplicative hash and one compare.
//
// Results are exactly the underlying Lookup's — the resolver only
// short-circuits recomputation — so swapping it into an aggregation
// pipeline cannot change any resolved block, edge, or count.
//
// A Resolver is NOT safe for concurrent use; each aggregation shard
// owns one (they share the Lookup, which is immutable).
type Resolver struct {
	l     *Lookup
	full  []resolveFullEnt
	bs    []blockStartEnt
	rng   []rangeEnt
	arena []BlockRef
}

// resolverBits sizes each direct-mapped cache at 2^resolverBits entries:
// large enough to hold every distinct branch site of the workloads that
// matter, small enough that three caches stay well under a megabyte.
const resolverBits = 12

// arenaMax bounds the range-result arena; when it fills, the arena and
// the range cache are reset together (a var so tests can shrink it).
var arenaMax = 1 << 20

type resolveFullEnt struct {
	addr       uint64
	start, end uint64
	ref        BlockRef
	ok         bool
	set        bool
}

type blockStartEnt struct {
	addr uint64
	ref  BlockRef
	ok   bool
	set  bool
}

type rangeEnt struct {
	start, end uint64
	off, n     int32
	set        bool
}

// NewResolver returns a memoizing view over l.
func NewResolver(l *Lookup) *Resolver {
	return &Resolver{
		l:    l,
		full: make([]resolveFullEnt, 1<<resolverBits),
		bs:   make([]blockStartEnt, 1<<resolverBits),
		rng:  make([]rangeEnt, 1<<resolverBits),
	}
}

func mixAddr(addr uint64) uint64 {
	return (addr * 0x9E3779B97F4A7C15) >> (64 - resolverBits)
}

func mixRange(start, end uint64) uint64 {
	return ((start ^ (end<<32 | end>>32)) * 0x9E3779B97F4A7C15) >> (64 - resolverBits)
}

// ResolveFull is Lookup.ResolveFull behind the memo.
func (r *Resolver) ResolveFull(addr uint64) (ref BlockRef, start, end uint64, ok bool) {
	e := &r.full[mixAddr(addr)]
	if e.set && e.addr == addr {
		return e.ref, e.start, e.end, e.ok
	}
	ref, start, end, ok = r.l.ResolveFull(addr)
	*e = resolveFullEnt{addr: addr, start: start, end: end, ref: ref, ok: ok, set: true}
	return ref, start, end, ok
}

// IsBlockStart is Lookup.IsBlockStart behind the memo.
func (r *Resolver) IsBlockStart(addr uint64) (BlockRef, bool) {
	e := &r.bs[mixAddr(addr)]
	if e.set && e.addr == addr {
		return e.ref, e.ok
	}
	ref, ok := r.l.IsBlockStart(addr)
	*e = blockStartEnt{addr: addr, ref: ref, ok: ok, set: true}
	return ref, ok
}

// BlocksInRange is Lookup.BlocksInRange behind the memo. The returned
// slice aliases the resolver's arena and is valid only until the next
// BlocksInRange call — exactly the lifetime the aggregation loop needs,
// and on a hit the refs are not even copied.
func (r *Resolver) BlocksInRange(start, end uint64) []BlockRef {
	e := &r.rng[mixRange(start, end)]
	if e.set && e.start == start && e.end == end {
		return r.arena[e.off : int(e.off)+int(e.n) : int(e.off)+int(e.n)]
	}
	if len(r.arena) > arenaMax {
		// Entries evicted by collisions leak their arena refs; when the
		// leaks fill the arena, start over (the caches refill in a few
		// thousand records).
		r.arena = r.arena[:0]
		for i := range r.rng {
			r.rng[i].set = false
		}
	}
	off := len(r.arena)
	r.arena = r.l.BlocksInRangeAppend(r.arena, start, end)
	*e = rangeEnt{start: start, end: end, off: int32(off), n: int32(len(r.arena) - off), set: true}
	return r.arena[off:len(r.arena):len(r.arena)]
}

// FuncAt returns the function entry covering addr, if any.
func (l *Lookup) FuncAt(addr uint64) (*FuncEntry, bool) {
	lo, hi := 0, len(l.funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.funcs[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo - 1; i >= 0 && i >= lo-8; i-- {
		f := &l.funcs[i]
		if addr < f.End {
			return f.Entry, true
		}
	}
	return nil, false
}

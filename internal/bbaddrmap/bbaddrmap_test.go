package bbaddrmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Map {
	return &Map{Funcs: []FuncEntry{
		{
			Name: "foo", Addr: 0x1000,
			Blocks: []BlockEntry{
				{ID: 0, Offset: 0, Size: 16, Flags: FlagCall},
				{ID: 1, Offset: 16, Size: 8, Flags: FlagFallThrough},
				{ID: 3, Offset: 24, Size: 12, Flags: FlagReturn},
			},
		},
		{
			Name: "foo", Addr: 0x4000, // cold fragment of foo
			Blocks: []BlockEntry{
				{ID: 2, Offset: 0, Size: 20, Flags: FlagLandingPad},
			},
		},
		{
			Name: "bar", Addr: 0x2000,
			Blocks: []BlockEntry{
				{ID: 0, Offset: 0, Size: 5, Flags: 0},
			},
		},
	}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(sample())
	for cut := 1; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("decoded %d-byte truncation", cut)
		}
	}
	if _, err := Decode(append(data, 0xFF)); err == nil {
		t.Error("decoded input with trailing bytes")
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := &Map{}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 0 {
		t.Errorf("got %d funcs, want 0", len(got.Funcs))
	}
}

func TestResolve(t *testing.T) {
	l := NewLookup(sample())
	cases := []struct {
		addr   uint64
		fn     string
		id     int
		wantOK bool
	}{
		{0x1000, "foo", 0, true},
		{0x100F, "foo", 0, true},
		{0x1010, "foo", 1, true},
		{0x1018, "foo", 3, true},
		{0x1023, "foo", 3, true},
		{0x1024, "", 0, false}, // one past the end of foo's hot fragment
		{0x2000, "bar", 0, true},
		{0x2004, "bar", 0, true},
		{0x2005, "", 0, false},
		{0x4000, "foo", 2, true}, // cold fragment resolves back to foo
		{0x4013, "foo", 2, true},
		{0x0FFF, "", 0, false},
		{0x9999, "", 0, false},
	}
	for _, c := range cases {
		fn, id, ok := l.Resolve(c.addr)
		if ok != c.wantOK || fn != c.fn || (ok && id != c.id) {
			t.Errorf("Resolve(%#x) = (%q, %d, %v), want (%q, %d, %v)",
				c.addr, fn, id, ok, c.fn, c.id, c.wantOK)
		}
	}
}

func TestFuncAt(t *testing.T) {
	l := NewLookup(sample())
	f, ok := l.FuncAt(0x2003)
	if !ok || f.Name != "bar" {
		t.Errorf("FuncAt(0x2003) = %v, %v", f, ok)
	}
	if _, ok := l.FuncAt(0x3000); ok {
		t.Error("FuncAt in a hole should fail")
	}
}

func TestRebase(t *testing.T) {
	m := sample()
	r := m.Rebase(0x1000)
	if r.Funcs[0].Addr != 0x2000 || r.Funcs[2].Addr != 0x3000 {
		t.Error("Rebase did not shift addresses")
	}
	if m.Funcs[0].Addr != 0x1000 {
		t.Error("Rebase mutated the original")
	}
	r.Funcs[0].Blocks[0].Size = 999
	if m.Funcs[0].Blocks[0].Size == 999 {
		t.Error("Rebase shares block slices with the original")
	}
}

func TestMerge(t *testing.T) {
	a := &Map{Funcs: []FuncEntry{{Name: "a"}}}
	b := &Map{Funcs: []FuncEntry{{Name: "b"}, {Name: "c"}}}
	m := Merge(a, b)
	if len(m.Funcs) != 3 || m.Funcs[2].Name != "c" {
		t.Errorf("Merge produced %+v", m.Funcs)
	}
}

// Property: the memoizing Resolver answers every query exactly like the
// raw Lookup, under heavy repetition (high hit rate), collisions, and
// arena resets.
func TestResolverMatchesLookup(t *testing.T) {
	oldMax := arenaMax
	arenaMax = 64 // force frequent arena resets
	defer func() { arenaMax = oldMax }()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Map{}
		addr := uint64(0x1000)
		var ends []uint64
		nFrag := 1 + rng.Intn(16)
		for i := 0; i < nFrag; i++ {
			fn := FuncEntry{Name: "f" + string(rune('a'+rng.Intn(8))), Addr: addr}
			off := uint64(0)
			nb := 1 + rng.Intn(6)
			for j := 0; j < nb; j++ {
				size := uint64(rng.Intn(24)) // zero-size blocks included
				fn.Blocks = append(fn.Blocks, BlockEntry{ID: j, Offset: off, Size: size})
				off += size
			}
			m.Funcs = append(m.Funcs, fn)
			addr += off
			ends = append(ends, addr)
			addr += uint64(rng.Intn(32)) // gap
		}
		l := NewLookup(m)
		r := NewResolver(l)
		span := addr + 16
		probe := func() uint64 {
			// Bias probes toward real code so hits and misses both occur,
			// and revisit a small working set to exercise the memo.
			if rng.Intn(4) == 0 {
				return uint64(rng.Int63n(int64(span)))
			}
			return 0x1000 + uint64(rng.Int63n(int64(span-0x1000)))>>uint(rng.Intn(3))
		}
		for q := 0; q < 4000; q++ {
			a := probe()
			wantRef, wantStart, wantEnd, wantOK := l.ResolveFull(a)
			gotRef, gotStart, gotEnd, gotOK := r.ResolveFull(a)
			if wantRef != gotRef || wantStart != gotStart || wantEnd != gotEnd || wantOK != gotOK {
				return false
			}
			wantBS, wantBSOK := l.IsBlockStart(a)
			gotBS, gotBSOK := r.IsBlockStart(a)
			if wantBS != gotBS || wantBSOK != gotBSOK {
				return false
			}
			b := probe()
			if b < a {
				a, b = b, a
			}
			want := l.BlocksInRange(a, b)
			got := r.BlocksInRange(a, b)
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every (addr in block) resolves to that block for random
// non-overlapping layouts.
func TestResolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Map{}
		addr := uint64(0x1000)
		type placed struct {
			fn    string
			id    int
			start uint64
			size  uint64
		}
		var all []placed
		nFrag := 1 + rng.Intn(20)
		for i := 0; i < nFrag; i++ {
			fn := FuncEntry{Name: "f" + string(rune('a'+rng.Intn(26))), Addr: addr}
			off := uint64(0)
			nb := 1 + rng.Intn(6)
			for j := 0; j < nb; j++ {
				size := uint64(1 + rng.Intn(40))
				fn.Blocks = append(fn.Blocks, BlockEntry{ID: j, Offset: off, Size: size})
				all = append(all, placed{fn.Name, j, addr + off, size})
				off += size
			}
			m.Funcs = append(m.Funcs, fn)
			addr += off + uint64(rng.Intn(64)) // gap
		}
		l := NewLookup(m)
		for _, p := range all {
			for _, probe := range []uint64{p.start, p.start + p.size - 1, p.start + p.size/2} {
				fn, id, ok := l.Resolve(probe)
				if !ok || fn != p.fn || id != p.id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package heatmap records instruction-access heat maps: a matrix of fetch
// counts bucketed by (time, text offset), reproducing the paper's Figure 7
// whole-binary instruction access maps.
package heatmap

import (
	"fmt"
	"io"
	"strings"
)

// Recorder accumulates fetch events into a fixed-size matrix.
type Recorder struct {
	base       uint64 // text base address
	addrBucket uint64 // bytes per address bucket (row)
	timeBucket uint64 // instructions per time bucket (column)
	rows       int
	cols       int
	counts     []uint64 // rows x cols
	maxCol     int
}

// NewRecorder creates a recorder covering textSize bytes from base, with
// the given matrix resolution.
func NewRecorder(base uint64, textSize int64, rows, cols int, expectedInsts uint64) *Recorder {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	ab := (uint64(textSize) + uint64(rows) - 1) / uint64(rows)
	if ab == 0 {
		ab = 1
	}
	tb := expectedInsts / uint64(cols)
	if tb == 0 {
		tb = 1
	}
	return &Recorder{
		base: base, addrBucket: ab, timeBucket: tb,
		rows: rows, cols: cols,
		counts: make([]uint64, rows*cols),
	}
}

// Touch records a fetch of addr at instruction-time t.
func (r *Recorder) Touch(addr uint64, t uint64) {
	if addr < r.base {
		return
	}
	row := int((addr - r.base) / r.addrBucket)
	col := int(t / r.timeBucket)
	if row >= r.rows {
		return
	}
	if col >= r.cols {
		col = r.cols - 1
	}
	if col > r.maxCol {
		r.maxCol = col
	}
	r.counts[row*r.cols+col]++
}

// At returns the count in matrix cell (row, col).
func (r *Recorder) At(row, col int) uint64 { return r.counts[row*r.cols+col] }

// Dims returns the matrix dimensions.
func (r *Recorder) Dims() (rows, cols int) { return r.rows, r.cols }

// TouchedRows returns how many address buckets saw any access: the measure
// of code footprint spread the Fig-7 bands visualize.
func (r *Recorder) TouchedRows() int {
	n := 0
	for row := 0; row < r.rows; row++ {
		for col := 0; col < r.cols; col++ {
			if r.counts[row*r.cols+col] > 0 {
				n++
				break
			}
		}
	}
	return n
}

// HotSpan returns the address span (in bytes) between the lowest and
// highest touched buckets; tight layouts yield small spans.
func (r *Recorder) HotSpan() int64 {
	lo, hi := -1, -1
	for row := 0; row < r.rows; row++ {
		touched := false
		for col := 0; col < r.cols; col++ {
			if r.counts[row*r.cols+col] > 0 {
				touched = true
				break
			}
		}
		if touched {
			if lo < 0 {
				lo = row
			}
			hi = row
		}
	}
	if lo < 0 {
		return 0
	}
	return int64(hi-lo+1) * int64(r.addrBucket)
}

// WriteCSV emits the matrix as CSV: one row per address bucket (ascending
// offset), one column per time bucket.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cols := r.maxCol + 1
	for row := 0; row < r.rows; row++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d", uint64(row)*r.addrBucket)
		for col := 0; col < cols; col++ {
			fmt.Fprintf(&sb, ",%d", r.counts[row*r.cols+col])
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the heat map as text art (rows = address, columns =
// time), darkest glyph for the hottest cells. Rows with no accesses at all
// are compressed when compact is true.
func (r *Recorder) RenderASCII(w io.Writer, compact bool) error {
	glyphs := []byte(" .:-=+*#%@")
	var max uint64
	for _, c := range r.counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	cols := r.maxCol + 1
	skipped := 0
	for row := r.rows - 1; row >= 0; row-- { // high offsets on top, like Fig 7
		empty := true
		line := make([]byte, cols)
		for col := 0; col < cols; col++ {
			c := r.counts[row*r.cols+col]
			if c > 0 {
				empty = false
			}
			idx := int(uint64(len(glyphs)-1) * c / max)
			line[col] = glyphs[idx]
		}
		if empty && compact {
			skipped++
			continue
		}
		if skipped > 0 {
			fmt.Fprintf(w, "      ... %d empty rows ...\n", skipped)
			skipped = 0
		}
		if _, err := fmt.Fprintf(w, "%7.2fMB |%s|\n", float64(uint64(row)*r.addrBucket)/(1<<20), line); err != nil {
			return err
		}
	}
	if skipped > 0 {
		fmt.Fprintf(w, "      ... %d empty rows ...\n", skipped)
	}
	return nil
}

package heatmap

import (
	"bytes"
	"strings"
	"testing"
)

func TestTouchAndAt(t *testing.T) {
	r := NewRecorder(0x1000, 1024, 16, 10, 1000)
	r.Touch(0x1000, 0)   // row 0, col 0
	r.Touch(0x1000, 0)   // again
	r.Touch(0x13FF, 999) // last row, last col
	if got := r.At(0, 0); got != 2 {
		t.Errorf("At(0,0) = %d, want 2", got)
	}
	rows, cols := r.Dims()
	if rows != 16 || cols != 10 {
		t.Errorf("dims = %d,%d", rows, cols)
	}
	if r.At(15, 9) != 1 {
		t.Errorf("corner cell = %d", r.At(15, 9))
	}
}

func TestTouchIgnoresOutOfRange(t *testing.T) {
	r := NewRecorder(0x1000, 64, 4, 4, 100)
	r.Touch(0x0F00, 0) // below base
	r.Touch(0x2000, 0) // beyond text
	if r.TouchedRows() != 0 {
		t.Error("out-of-range touch recorded")
	}
}

func TestTimeOverflowClampsToLastColumn(t *testing.T) {
	r := NewRecorder(0, 64, 2, 4, 100)
	r.Touch(0, 1_000_000) // way past expected insts
	if r.At(0, 3) != 1 {
		t.Error("overflowing time not clamped to last column")
	}
}

func TestTouchedRowsAndHotSpan(t *testing.T) {
	r := NewRecorder(0, 1000, 10, 4, 100) // 100 bytes per row
	r.Touch(50, 0)                        // row 0
	r.Touch(950, 0)                       // row 9
	if got := r.TouchedRows(); got != 2 {
		t.Errorf("TouchedRows = %d, want 2", got)
	}
	if got := r.HotSpan(); got != 1000 {
		t.Errorf("HotSpan = %d, want 1000 (rows 0..9)", got)
	}
	tight := NewRecorder(0, 1000, 10, 4, 100)
	tight.Touch(50, 0)
	tight.Touch(150, 0)
	if got := tight.HotSpan(); got != 200 {
		t.Errorf("tight HotSpan = %d, want 200", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0, 200, 2, 3, 30)
	r.Touch(0, 0)
	r.Touch(100, 25)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV rows, want 2: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "0,1") {
		t.Errorf("row 0 = %q", lines[0])
	}
}

func TestRenderASCII(t *testing.T) {
	r := NewRecorder(0, 4096, 8, 8, 100)
	r.Touch(0, 0)
	r.Touch(4000, 50)
	var buf bytes.Buffer
	if err := r.RenderASCII(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@") {
		t.Errorf("no hot glyph in output:\n%s", out)
	}
	if !strings.Contains(out, "empty rows") {
		t.Errorf("compact mode did not fold empty rows:\n%s", out)
	}
	// Empty map renders without dividing by zero.
	empty := NewRecorder(0, 64, 2, 2, 10)
	if err := empty.RenderASCII(&buf, false); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateDimensions(t *testing.T) {
	r := NewRecorder(0, 0, 0, 0, 0)
	r.Touch(0, 0) // must not panic
	rows, cols := r.Dims()
	if rows < 1 || cols < 1 {
		t.Errorf("dims = %d,%d", rows, cols)
	}
}

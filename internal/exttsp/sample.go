// Params sampling, mutation, and clamping for the automated layout-policy
// search (internal/policysearch). The search needs three deterministic
// primitives over the scoring-parameter space: draw a random point, take a
// bounded mutation step from an existing point, and clamp any candidate
// into the region where Ext-TSP scoring stays well-conditioned. All
// randomness comes from the caller's seeded *rand.Rand, so a fixed seed
// reproduces the exact candidate sequence on any machine.
package exttsp

import (
	"math"
	"math/rand"
)

// Search bounds: the box the automated policy search explores. Weights
// are searched log-uniformly (their effect is multiplicative), windows
// over the byte ranges where the decay profile still discriminates
// between nearby and faraway placements on realistic function sizes.
const (
	MinWeight = 0.001
	MaxWeight = 4.0
	MinWindow = 64
	MaxWindow = 16384
)

// Clamp resolves p (zero fields become the paper defaults) and clamps
// every field into the search bounds. Search drivers call it after every
// mutation so no candidate can leave the well-conditioned region (e.g. a
// zero or negative weight, or a window too small to ever match).
func (p Params) Clamp() Params {
	p = p.normalize()
	clampF := func(v float64) float64 {
		if v < MinWeight {
			return MinWeight
		}
		if v > MaxWeight {
			return MaxWeight
		}
		return v
	}
	clampW := func(v int64) int64 {
		if v < MinWindow {
			return MinWindow
		}
		if v > MaxWindow {
			return MaxWindow
		}
		return v
	}
	p.FallthroughWeight = clampF(p.FallthroughWeight)
	p.ForwardWeight = clampF(p.ForwardWeight)
	p.BackwardWeight = clampF(p.BackwardWeight)
	p.ForwardWindow = clampW(p.ForwardWindow)
	p.BackwardWindow = clampW(p.BackwardWindow)
	return p
}

// logUniform draws from [lo, hi] with log-uniform density: a multiplicative
// parameter is as likely to land in [x, 2x] anywhere in the range.
func logUniform(r *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, r.Float64())
}

// SampleParams draws a uniformly random parameterization from the search
// bounds (log-uniform weights, geometric windows). The fallthrough weight
// is sampled from a narrower band around its default: it is the score's
// scale factor, and letting it collapse toward MinWeight just rescales
// every candidate identically.
func SampleParams(r *rand.Rand) Params {
	return Params{
		FallthroughWeight: logUniform(r, 0.5, 2.0),
		ForwardWeight:     logUniform(r, 0.01, 1.0),
		BackwardWeight:    logUniform(r, 0.005, 0.5),
		ForwardWindow:     sampleWindow(r),
		BackwardWindow:    sampleWindow(r),
	}.Clamp()
}

func sampleWindow(r *rand.Rand) int64 {
	return int64(logUniform(r, 128, 8192))
}

// MutateParams perturbs exactly one field of p by a bounded multiplicative
// step (×[1/2, 2], log-uniform) and clamps the result — the unit move of
// the evolutionary search driver.
func MutateParams(p Params, r *rand.Rand) Params {
	p = p.normalize()
	step := logUniform(r, 0.5, 2.0)
	switch r.Intn(5) {
	case 0:
		p.FallthroughWeight *= step
	case 1:
		p.ForwardWeight *= step
	case 2:
		p.BackwardWeight *= step
	case 3:
		p.ForwardWindow = int64(float64(p.ForwardWindow) * step)
	case 4:
		p.BackwardWindow = int64(float64(p.BackwardWindow) * step)
	}
	return p.Clamp()
}

package exttsp

import (
	"reflect"
	"testing"
)

// graphFromBytes decodes an arbitrary byte string into a small CFG-like
// graph deterministically, so the fuzzer explores graph shapes (including
// self-loops, duplicate edges, zero weights, and disconnected nodes)
// rather than raw memory-safety only.
func graphFromBytes(data []byte) (*Graph, int) {
	if len(data) < 2 {
		return nil, 0
	}
	n := 2 + int(data[0])%62
	forced := -1
	if data[1]%3 == 0 {
		forced = int(data[1]/3) % n
	}
	g := &Graph{Nodes: make([]Node, n)}
	i := 2
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for j := range g.Nodes {
		g.Nodes[j] = Node{Size: int64(1 + next()), Count: uint64(next())}
	}
	for i < len(data)-2 {
		g.Edges = append(g.Edges, Edge{
			Src:    int(next()) % n,
			Dst:    int(next()) % n,
			Weight: uint64(next()),
		})
	}
	return g, forced
}

// FuzzHeapNaiveEquivalence is the retrieval-equivalence property as a
// fuzz target: on any decoded graph, the heap-based logarithmic retrieval
// and the naive quadratic rescan must produce identical layouts with
// equal Ext-TSP scores — the §4.7 speedup must be purely about retrieval
// cost, never about which merge wins.
func FuzzHeapNaiveEquivalence(f *testing.F) {
	f.Add([]byte{8, 0, 10, 5, 20, 9, 30, 1, 40, 7, 0, 1, 50, 1, 2, 40, 2, 3, 30})
	f.Add([]byte{3, 3, 1, 1, 1, 1, 1, 1, 0, 0, 9, 1, 1, 9})
	f.Add([]byte{64, 6, 255, 255, 0, 0, 128, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, forced := graphFromBytes(data)
		if g == nil {
			return
		}
		on, err := Layout(g, Options{ForcedFirst: forced})
		if err != nil {
			t.Fatalf("naive layout: %v", err)
		}
		oh, err := Layout(g, Options{ForcedFirst: forced, UseHeap: true})
		if err != nil {
			t.Fatalf("heap layout: %v", err)
		}
		if !reflect.DeepEqual(on, oh) {
			t.Fatalf("retrieval strategies diverged (n=%d forced=%d)\nnaive %v\nheap  %v",
				len(g.Nodes), forced, on, oh)
		}
		scratch := &Scratch{}
		if sn, sh := ScoreWith(g, on, Params{}, scratch), ScoreWith(g, oh, Params{}, scratch); sn != sh {
			t.Fatalf("scores diverged: naive %v heap %v", sn, sh)
		}
	})
}

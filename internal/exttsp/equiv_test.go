package exttsp

import (
	"container/heap"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// fuzzGraph builds a randomized CFG-like graph: a chain backbone, random
// extra edges (including duplicates, self-loops, and zero weights, which
// the optimizer must tolerate), and varied block sizes.
func fuzzGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{Nodes: make([]Node, n)}
	for i := range g.Nodes {
		g.Nodes[i] = Node{Size: int64(4 + rng.Intn(96)), Count: uint64(rng.Intn(2000))}
	}
	for i := 0; i+1 < n; i++ {
		if rng.Intn(4) != 0 {
			g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, Weight: uint64(rng.Intn(200))})
		}
	}
	extra := n
	for i := 0; i < extra; i++ {
		g.Edges = append(g.Edges, Edge{Src: rng.Intn(n), Dst: rng.Intn(n), Weight: uint64(rng.Intn(100))})
	}
	return g
}

// TestHeapNaiveScoreEquivalence is the fuzz-style retrieval-equivalence
// property: the heap-based logarithmic retrieval and the naive quadratic
// rescan must reach exactly equal scores (in fact identical layouts) on
// randomized graphs — the §4.7 speedup is purely about retrieval cost.
func TestHeapNaiveScoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20230419))
	scratch := &Scratch{}
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(70)
		g := fuzzGraph(rng, n)
		forced := -1
		if rng.Intn(2) == 0 {
			forced = rng.Intn(n)
		}
		on, err := Layout(g, Options{ForcedFirst: forced})
		if err != nil {
			t.Fatal(err)
		}
		oh, err := Layout(g, Options{ForcedFirst: forced, UseHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		sn := ScoreWith(g, on, Params{}, scratch)
		sh := ScoreWith(g, oh, Params{}, scratch)
		if sn != sh {
			t.Fatalf("trial %d (n=%d forced=%d): naive score %v != heap score %v\nnaive order %v\nheap order  %v",
				trial, n, forced, sn, sh, on, oh)
		}
		if !reflect.DeepEqual(on, oh) {
			t.Fatalf("trial %d (n=%d forced=%d): retrieval strategies diverged\nnaive %v\nheap  %v",
				trial, n, forced, on, oh)
		}
	}
}

// TestScoreWithScratchMatchesScore verifies the scratch-buffer Score path
// is exact and allocation-free once the scratch is warm.
func TestScoreWithScratchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scratch := &Scratch{}
	for trial := 0; trial < 50; trial++ {
		g := fuzzGraph(rng, 2+rng.Intn(50))
		order := rng.Perm(len(g.Nodes))
		// Partial orders (subset of nodes) must work identically too.
		if rng.Intn(2) == 0 {
			order = order[:1+rng.Intn(len(order))]
		}
		want := Score(g, order)
		if got := ScoreWith(g, order, Params{}, scratch); got != want {
			t.Fatalf("trial %d: ScoreWith %v != Score %v", trial, got, want)
		}
	}
	g := fuzzGraph(rng, 64)
	order := rng.Perm(64)
	ScoreWith(g, order, Params{}, scratch) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() { ScoreWith(g, order, Params{}, scratch) })
	if allocs != 0 {
		t.Errorf("ScoreWith with warm scratch allocates %.1f times per call, want 0", allocs)
	}
}

// TestTunedMatchesUntunedReference pins the inner-loop tuning (cached chain
// scores, slice scratch buffers) to the pre-tuning semantics: an untuned
// reference that recomputes every base score with map-based position
// tables must produce byte-identical layouts on the existing test corpus.
func TestTunedMatchesUntunedReference(t *testing.T) {
	type tcase struct {
		name string
		g    *Graph
	}
	cases := []tcase{{"diamond", diamondGraph()}}
	for _, seed := range []int64{42, 7, 99, 5} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 8; trial++ {
			n := 2 + rng.Intn(40)
			cases = append(cases, tcase{name: "rand", g: randGraph(rng, n)})
		}
	}
	for i, tc := range cases {
		for _, useHeap := range []bool{false, true} {
			opts := Options{ForcedFirst: 0, UseHeap: useHeap}
			got, err := Layout(tc.g, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := untunedLayout(tc.g, opts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("case %d (%s) heap=%v: tuned layout diverged from untuned reference\ntuned   %v\nuntuned %v",
					i, tc.name, useHeap, got, want)
			}
			if gs, ws := Score(tc.g, got), Score(tc.g, want); gs != ws {
				t.Fatalf("case %d (%s) heap=%v: tuned score %v != untuned score %v", i, tc.name, useHeap, gs, ws)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Untuned reference: the pre-tuning formulation. Chain base scores are
// recomputed from scratch for every candidate, position tables are maps,
// and neighbor sets are map-deduplicated — the exact data-structure shape
// the production code had before the inner-loop tuning. Exploration and
// retrieval order match production, so layouts must be identical.

type refChain struct {
	id    int
	nodes []int
	size  int64
	count uint64
	gen   int
	dead  bool
}

type refState struct {
	g       *Graph
	opts    Options
	chains  []*refChain
	owner   []int
	nodeOut [][]int
	nodeIn  [][]int
}

func newRefState(g *Graph, opts Options) *refState {
	st := &refState{g: g, opts: opts}
	st.chains = make([]*refChain, len(g.Nodes))
	st.owner = make([]int, len(g.Nodes))
	for i := range g.Nodes {
		st.chains[i] = &refChain{id: i, nodes: []int{i}, size: g.Nodes[i].Size, count: g.Nodes[i].Count}
		st.owner[i] = i
	}
	st.nodeOut = make([][]int, len(g.Nodes))
	st.nodeIn = make([][]int, len(g.Nodes))
	for ei, e := range g.Edges {
		if e.Src == e.Dst || e.Weight == 0 {
			continue
		}
		st.nodeOut[e.Src] = append(st.nodeOut[e.Src], ei)
		st.nodeIn[e.Dst] = append(st.nodeIn[e.Dst], ei)
	}
	return st
}

func (st *refState) neighbors(c *refChain) []int {
	seen := map[int]bool{c.id: true}
	var out []int
	for _, node := range c.nodes {
		for _, ei := range st.nodeOut[node] {
			if o := st.owner[st.g.Edges[ei].Dst]; !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
		for _, ei := range st.nodeIn[node] {
			if o := st.owner[st.g.Edges[ei].Src]; !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	sort.Ints(out)
	return out
}

func (st *refState) chainScore(nodes []int) float64 {
	if len(nodes) == 1 {
		return 0
	}
	pos := make(map[int]int64, len(nodes))
	addr := int64(0)
	for _, nd := range nodes {
		pos[nd] = addr
		addr += st.g.Nodes[nd].Size
	}
	var total float64
	for _, nd := range nodes {
		for _, ei := range st.nodeOut[nd] {
			e := st.g.Edges[ei]
			dp, ok := pos[e.Dst]
			if !ok {
				continue
			}
			total += st.opts.Params.normalize().edgeGain(e.Weight, pos[e.Src]+st.g.Nodes[e.Src].Size, dp)
		}
	}
	return total
}

func (st *refState) bestMerge(x, y *refChain) (mergeCandidate, bool) {
	baseX := st.chainScore(x.nodes)
	baseY := st.chainScore(y.nodes)
	forced := st.opts.ForcedFirst
	legal := func(seq []int) bool {
		if forced < 0 {
			return true
		}
		if st.owner[forced] != x.id && st.owner[forced] != y.id {
			return true
		}
		return seq[0] == forced
	}
	best := mergeCandidate{gain: -1, x: x.id, y: y.id, xGen: x.gen, yGen: y.gen}
	try := func(seq []int) {
		if !legal(seq) {
			return
		}
		gain := st.chainScore(seq) - baseX - baseY
		if gain > best.gain {
			best.gain = gain
			best.order = seq
		}
	}
	concat := func(a, b []int) []int {
		out := make([]int, 0, len(a)+len(b))
		out = append(out, a...)
		return append(out, b...)
	}
	try(concat(x.nodes, y.nodes))
	try(concat(y.nodes, x.nodes))
	if len(x.nodes) <= st.opts.maxSplit() {
		for i := 1; i < len(x.nodes); i++ {
			seq := make([]int, 0, len(x.nodes)+len(y.nodes))
			seq = append(seq, x.nodes[:i]...)
			seq = append(seq, y.nodes...)
			seq = append(seq, x.nodes[i:]...)
			try(seq)
		}
	}
	if best.order == nil || best.gain <= 0 {
		return best, false
	}
	return best, true
}

func (st *refState) applyMerge(c mergeCandidate) {
	x := st.chains[c.x]
	y := st.chains[c.y]
	x.nodes = c.order
	x.size += y.size
	x.count += y.count
	x.gen++
	y.dead = true
	y.gen++
	for _, nd := range y.nodes {
		st.owner[nd] = x.id
	}
}

func (st *refState) runNaive() {
	for {
		var best mergeCandidate
		found := false
		for _, x := range st.chains {
			if x.dead {
				continue
			}
			for _, yid := range st.neighbors(x) {
				if yid <= x.id {
					continue
				}
				y := st.chains[yid]
				if y.dead {
					continue
				}
				if c, ok := st.bestMerge(x, y); ok && (!found || c.gain > best.gain) {
					best = c
					found = true
				}
			}
		}
		if !found {
			return
		}
		st.applyMerge(best)
	}
}

func (st *refState) runHeap() {
	h := &candidateHeap{}
	push := func(x, y *refChain) {
		if c, ok := st.bestMerge(x, y); ok {
			heap.Push(h, c)
		}
	}
	for _, x := range st.chains {
		for _, yid := range st.neighbors(x) {
			if yid > x.id {
				push(x, st.chains[yid])
			}
		}
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCandidate)
		x, y := st.chains[c.x], st.chains[c.y]
		if x.dead || y.dead || x.gen != c.xGen || y.gen != c.yGen {
			continue
		}
		st.applyMerge(c)
		for _, nid := range st.neighbors(x) {
			nb := st.chains[nid]
			if nb.dead {
				continue
			}
			if nb.id < x.id {
				push(nb, x)
			} else {
				push(x, nb)
			}
		}
	}
}

func (st *refState) finalOrder() []int {
	var live []*refChain
	for _, c := range st.chains {
		if !c.dead {
			live = append(live, c)
		}
	}
	forced := st.opts.ForcedFirst
	density := func(c *refChain) float64 {
		if c.size == 0 {
			return float64(c.count)
		}
		return float64(c.count) / float64(c.size)
	}
	sort.SliceStable(live, func(i, j int) bool {
		ci, cj := live[i], live[j]
		fi := forced >= 0 && st.owner[forced] == ci.id
		fj := forced >= 0 && st.owner[forced] == cj.id
		if fi != fj {
			return fi
		}
		di, dj := density(ci), density(cj)
		if di != dj {
			return di > dj
		}
		return ci.id < cj.id
	})
	var order []int
	for _, c := range live {
		order = append(order, c.nodes...)
	}
	return order
}

func untunedLayout(g *Graph, opts Options) []int {
	if len(g.Nodes) == 0 {
		return nil
	}
	st := newRefState(g, opts)
	if opts.UseHeap {
		st.runHeap()
	} else {
		st.runNaive()
	}
	return st.finalOrder()
}

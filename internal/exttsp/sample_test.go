package exttsp

import (
	"math/rand"
	"reflect"
	"testing"
)

func checkBounds(t *testing.T, p Params, ctx string) {
	t.Helper()
	for _, w := range []float64{p.FallthroughWeight, p.ForwardWeight, p.BackwardWeight} {
		if w < MinWeight || w > MaxWeight {
			t.Errorf("%s: weight %g outside [%g, %g] in %+v", ctx, w, float64(MinWeight), float64(MaxWeight), p)
		}
	}
	for _, w := range []int64{p.ForwardWindow, p.BackwardWindow} {
		if w < MinWindow || w > MaxWindow {
			t.Errorf("%s: window %d outside [%d, %d] in %+v", ctx, w, int64(MinWindow), int64(MaxWindow), p)
		}
	}
}

func TestSampleParamsDeterministicAndBounded(t *testing.T) {
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		pa, pb := SampleParams(a), SampleParams(b)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("draw %d diverged for one seed: %+v != %+v", i, pa, pb)
		}
		checkBounds(t, pa, "sample")
	}
}

func TestMutateParamsSingleFieldAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := Params{}.Clamp()
	for i := 0; i < 500; i++ {
		q := MutateParams(p, r)
		checkBounds(t, q, "mutate")
		// Exactly one field moves per step (unless the step clamped back
		// onto the same value, which the bounded box makes vanishingly
		// rare from an interior point — count and assert the common case).
		diff := 0
		pv, qv := reflect.ValueOf(p), reflect.ValueOf(q)
		for f := 0; f < pv.NumField(); f++ {
			if !reflect.DeepEqual(pv.Field(f).Interface(), qv.Field(f).Interface()) {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("mutation %d moved %d fields: %+v -> %+v", i, diff, p, q)
		}
		p = q
	}
}

func TestClampResolvesZeroToDefaults(t *testing.T) {
	got := Params{}.Clamp()
	want := Params{}.Resolve()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero Params clamped to %+v, want resolved defaults %+v", got, want)
	}
	wild := Params{FallthroughWeight: 1e9, ForwardWeight: -3, BackwardWeight: 1e-12,
		ForwardWindow: 1 << 40, BackwardWindow: 1}.Clamp()
	checkBounds(t, wild, "clamp")
}

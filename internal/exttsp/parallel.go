// Sharded chain formation for the §4.7 inter-procedural layout: the
// global Ext-TSP run decomposes by connected components of the merge
// graph, because every merge candidate joins two chains linked by at
// least one edge — chains in different components never interact, their
// candidate gains are independent, and the greedy retrieval (naive or
// heap) applies each component's merge sequence unchanged no matter how
// the components' sequences interleave. So chain formation can run per
// component in parallel shards and the shard chain-sets can be merged by
// re-seeding the ordinary retrieval over the pre-built chains: the final
// layout is identical to the single serial run, at every worker count.
package exttsp

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Chain is one formed chain of the merge process, in the node ids of the
// graph it was formed over.
type Chain struct {
	Nodes []int
	Size  int64  // summed node sizes
	Count uint64 // summed execution counts
}

// Components returns the connected components of g's merge graph — nodes
// linked by at least one positive-weight non-self edge, the exact
// adjacency the merge retrieval explores. Each component's nodes are
// ascending and components are ordered by their smallest node, so the
// partition is deterministic.
func Components(g *Graph) [][]int {
	n := len(g.Nodes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst || e.Weight == 0 {
			continue // invisible to the merge adjacency
		}
		a, b := find(e.Src), find(e.Dst)
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	members := map[int][]int{}
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if members[r] == nil {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, len(roots))
	for i, r := range roots {
		out[i] = members[r] // ascending: appended in index order
	}
	return out
}

// FormChains runs the greedy chain-merge phase over the subgraph induced
// by nodes (ascending node ids of g), returning the formed chains in g's
// node ids, ordered by each chain's smallest node. When nodes is one
// component of Components(g), the returned chains are exactly the chains
// a whole-graph run would have formed for that component: the induced
// subgraph preserves every candidate gain and, because the local
// re-indexing is order-preserving, every id tie-break.
func FormChains(g *Graph, opts Options, nodes []int) ([]Chain, error) {
	local := &Graph{Nodes: make([]Node, len(nodes))}
	index := make(map[int]int, len(nodes))
	for i, n := range nodes {
		if i > 0 && nodes[i-1] >= n {
			return nil, fmt.Errorf("exttsp: shard nodes must be ascending and unique")
		}
		if n < 0 || n >= len(g.Nodes) {
			return nil, fmt.Errorf("exttsp: shard node %d out of range", n)
		}
		index[n] = i
		local.Nodes[i] = g.Nodes[n]
	}
	for _, e := range g.Edges {
		si, ok1 := index[e.Src]
		di, ok2 := index[e.Dst]
		if ok1 && ok2 {
			local.Edges = append(local.Edges, Edge{Src: si, Dst: di, Weight: e.Weight})
		}
	}
	lopts := opts
	lopts.ForcedFirst = -1
	if opts.ForcedFirst >= 0 {
		if li, ok := index[opts.ForcedFirst]; ok {
			lopts.ForcedFirst = li
		}
	}
	st := newState(local, lopts)
	if opts.UseHeap {
		st.runHeap()
	} else {
		st.runNaive()
	}
	var out []Chain
	for _, c := range st.chains {
		if c.dead {
			continue
		}
		ch := Chain{Nodes: make([]int, len(c.nodes))}
		for i, nd := range c.nodes {
			ch.Nodes[i] = nodes[nd]
			ch.Size += g.Nodes[nodes[nd]].Size
			ch.Count += g.Nodes[nodes[nd]].Count
		}
		out = append(out, ch)
	}
	sort.Slice(out, func(a, b int) bool { return minNode(out[a]) < minNode(out[b]) })
	return out, nil
}

func minNode(c Chain) int {
	m := c.Nodes[0]
	for _, n := range c.Nodes[1:] {
		if n < m {
			m = n
		}
	}
	return m
}

// LayoutChains finishes a layout from pre-built chains: it seeds the
// merge state with the given chains (which must partition g's nodes),
// runs the configured retrieval over any remaining cross-chain merges,
// and returns the final order. Seeded chain ids are each chain's
// smallest node — the id the serial run's surviving chain carries, since
// every applyMerge keeps the lower-id chain — so the final density sort
// breaks ties exactly as a whole-graph Layout call does.
func LayoutChains(g *Graph, opts Options, chains []Chain) ([]int, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, nil
	}
	if opts.ForcedFirst >= n {
		return nil, fmt.Errorf("exttsp: forced-first node %d out of range", opts.ForcedFirst)
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("exttsp: edge (%d,%d) out of range", e.Src, e.Dst)
		}
	}
	st := newState(g, opts)
	seen := make([]bool, n)
	// Mark every chain dead, then revive one representative per seeded
	// chain; the retrieval loops skip dead entries.
	for _, c := range st.chains {
		c.dead = true
	}
	for _, ch := range chains {
		if len(ch.Nodes) == 0 {
			return nil, fmt.Errorf("exttsp: empty chain")
		}
		rep := minNode(ch)
		c := st.chains[rep]
		c.dead = false
		c.nodes = append([]int(nil), ch.Nodes...)
		c.size = 0
		c.count = 0
		for _, nd := range ch.Nodes {
			if nd < 0 || nd >= n {
				return nil, fmt.Errorf("exttsp: chain node %d out of range", nd)
			}
			if seen[nd] {
				return nil, fmt.Errorf("exttsp: node %d appears in two chains", nd)
			}
			seen[nd] = true
			st.owner[nd] = rep
			c.size += g.Nodes[nd].Size
			c.count += g.Nodes[nd].Count
		}
		c.score = st.chainScore(c.nodes)
	}
	for nd, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("exttsp: node %d missing from chains", nd)
		}
	}
	if opts.UseHeap {
		st.runHeap()
	} else {
		st.runNaive()
	}
	return st.finalOrder(), nil
}

// LayoutParallel is Layout with chain formation fanned out over a worker
// pool, one shard per connected component of the merge graph. The final
// order is identical to Layout's at every worker count; workers <= 1 (or
// a single component) falls through to the serial path.
func LayoutParallel(g *Graph, opts Options, workers int) ([]int, error) {
	if workers <= 1 {
		return Layout(g, opts)
	}
	n := len(g.Nodes)
	if n == 0 {
		return nil, nil
	}
	if opts.ForcedFirst >= n {
		return nil, fmt.Errorf("exttsp: forced-first node %d out of range", opts.ForcedFirst)
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("exttsp: edge (%d,%d) out of range", e.Src, e.Dst)
		}
	}
	comps := Components(g)
	if len(comps) <= 1 {
		return Layout(g, opts)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	shards := make([][]Chain, len(comps))
	errs := make([]error, len(comps))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				shards[i], errs[i] = FormChains(g, opts, comps[i])
			}
		}()
	}
	wg.Wait()
	var chains []Chain
	for i := range comps {
		if errs[i] != nil {
			return nil, errs[i] // lowest shard index wins: deterministic
		}
		chains = append(chains, shards[i]...)
	}
	return LayoutChains(g, opts, chains)
}

package exttsp

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// islandGraph builds a graph of several disconnected fuzz islands, the
// shape the component-sharded chain formation partitions.
func islandGraph(rng *rand.Rand, islands int) *Graph {
	g := &Graph{}
	for k := 0; k < islands; k++ {
		sub := fuzzGraph(rng, 2+rng.Intn(24))
		base := len(g.Nodes)
		g.Nodes = append(g.Nodes, sub.Nodes...)
		for _, e := range sub.Edges {
			g.Edges = append(g.Edges, Edge{Src: base + e.Src, Dst: base + e.Dst, Weight: e.Weight})
		}
	}
	// Shuffle edge order; the layout must not depend on it beyond the
	// deterministic candidate tie-breaks.
	rng.Shuffle(len(g.Edges), func(i, j int) { g.Edges[i], g.Edges[j] = g.Edges[j], g.Edges[i] })
	return g
}

func TestComponentsPartition(t *testing.T) {
	g := &Graph{Nodes: make([]Node, 7)}
	g.Edges = []Edge{
		{Src: 0, Dst: 2, Weight: 5},
		{Src: 2, Dst: 4, Weight: 1},
		{Src: 5, Dst: 1, Weight: 3},
		{Src: 3, Dst: 3, Weight: 9}, // self-loop: no adjacency
		{Src: 3, Dst: 6, Weight: 0}, // zero weight: no adjacency
	}
	got := Components(g)
	want := [][]int{{0, 2, 4}, {1, 5}, {3}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
}

// TestLayoutParallelMatchesSerial is the sharding property: for
// multi-component graphs, component-sharded chain formation merged over
// pre-built chains must reproduce the serial whole-graph layout exactly,
// for both retrieval strategies, with and without a forced-first node.
func TestLayoutParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4407))
	for trial := 0; trial < 60; trial++ {
		g := islandGraph(rng, 1+rng.Intn(6))
		forced := -1
		if rng.Intn(2) == 0 {
			forced = rng.Intn(len(g.Nodes))
		}
		for _, useHeap := range []bool{false, true} {
			opts := Options{ForcedFirst: forced, UseHeap: useHeap}
			want, err := Layout(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 8} {
				got, err := LayoutParallel(g, opts, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d heap=%v workers=%d: parallel layout diverged\nserial   %v\nparallel %v",
						trial, useHeap, w, want, got)
				}
			}
		}
	}
}

// TestFormChainsMatchesGlobalChains checks the per-component claim
// directly: chains formed on one component's induced subgraph equal the
// chains a whole-graph run forms for that component.
func TestFormChainsMatchesGlobalChains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := islandGraph(rng, 2+rng.Intn(4))
		opts := Options{ForcedFirst: -1, UseHeap: trial%2 == 0}
		st := newState(g, opts)
		if opts.UseHeap {
			st.runHeap()
		} else {
			st.runNaive()
		}
		global := map[int][]int{} // representative -> nodes
		for _, c := range st.chains {
			if !c.dead {
				global[minNode(Chain{Nodes: c.nodes})] = c.nodes
			}
		}
		for _, comp := range Components(g) {
			chains, err := FormChains(g, opts, comp)
			if err != nil {
				t.Fatal(err)
			}
			for _, ch := range chains {
				want, ok := global[minNode(ch)]
				if !ok || !reflect.DeepEqual(ch.Nodes, want) {
					t.Fatalf("trial %d comp %v: shard chain %v != global chain %v", trial, comp, ch.Nodes, want)
				}
			}
		}
	}
}

func TestLayoutChainsValidation(t *testing.T) {
	g := &Graph{Nodes: make([]Node, 3)}
	cases := [][]Chain{
		{{Nodes: []int{0, 1}}},                       // node 2 missing
		{{Nodes: []int{0, 1}}, {Nodes: []int{1, 2}}}, // node 1 twice
		{{Nodes: []int{0, 1, 2}}, {Nodes: nil}},      // empty chain
		{{Nodes: []int{0, 1, 5}}},                    // out of range
	}
	for i, chains := range cases {
		if _, err := LayoutChains(g, Options{ForcedFirst: -1}, chains); err == nil {
			t.Errorf("case %d: invalid chain partition accepted", i)
		}
	}
	order, err := LayoutChains(g, Options{ForcedFirst: -1}, []Chain{{Nodes: []int{1, 0}}, {Nodes: []int{2}}})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int(nil), order...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{0, 1, 2}) {
		t.Fatalf("layout %v is not a permutation", order)
	}
}

func TestFormChainsRejectsBadShard(t *testing.T) {
	g := fuzzGraph(rand.New(rand.NewSource(1)), 6)
	if _, err := FormChains(g, Options{ForcedFirst: -1}, []int{2, 1}); err == nil {
		t.Error("descending shard accepted")
	}
	if _, err := FormChains(g, Options{ForcedFirst: -1}, []int{0, 9}); err == nil {
		t.Error("out-of-range shard node accepted")
	}
}

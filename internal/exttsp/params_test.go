package exttsp

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestZeroParamsAreGoldenDefaults pins the zero-value contract: a zero
// Params must behave exactly like a Params spelling out the paper
// defaults, for both layout and scoring, on the shared test corpus. If
// the defaults (or the zero-value resolution) ever drift, this fails.
func TestZeroParamsAreGoldenDefaults(t *testing.T) {
	explicit := Params{
		FallthroughWeight: FallthroughWeight,
		ForwardWeight:     ForwardWeight,
		BackwardWeight:    BackwardWeight,
		ForwardWindow:     ForwardWindow,
		BackwardWindow:    BackwardWindow,
	}
	if got := (Params{}).normalize(); got != explicit {
		t.Fatalf("Params{}.normalize() = %+v, want paper defaults %+v", got, explicit)
	}
	graphs := []*Graph{diamondGraph()}
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 12; trial++ {
		graphs = append(graphs, randGraph(rng, 2+rng.Intn(40)))
	}
	for gi, g := range graphs {
		for _, useHeap := range []bool{false, true} {
			zero, err := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
			if err != nil {
				t.Fatal(err)
			}
			expl, err := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap, Params: explicit})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(zero, expl) {
				t.Fatalf("graph %d heap=%v: zero-Params layout %v != explicit-defaults layout %v",
					gi, useHeap, zero, expl)
			}
			if zs, es := ScoreWith(g, zero, Params{}, nil), ScoreWith(g, zero, explicit, nil); zs != es {
				t.Fatalf("graph %d heap=%v: zero-Params score %v != explicit-defaults score %v",
					gi, useHeap, zs, es)
			}
		}
	}
}

// TestNonDefaultParamsChangeScoring is a sanity check that Params are
// actually consumed: a heavily reweighted Params must score a spread-out
// order differently from the defaults on a graph with forward branches.
func TestNonDefaultParamsChangeScoring(t *testing.T) {
	g := diamondGraph()
	order := []int{0, 1, 2, 3}
	def := ScoreWith(g, order, Params{}, nil)
	hot := ScoreWith(g, order, Params{ForwardWeight: 0.9}, nil)
	if def == hot {
		t.Fatalf("ForwardWeight override did not change score (both %v)", def)
	}
}

// TestConcurrentDistinctParams is the satellite -race test: two
// goroutines sweep two different Params over the same shared Graph
// concurrently. Before Params existed this was inherently a data race
// on package globals; now it must be clean and each side must keep
// producing its own deterministic result.
func TestConcurrentDistinctParams(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	g := randGraph(rng, 48)
	pA := Params{} // paper defaults
	pB := Params{ForwardWeight: 0.4, BackwardWeight: 0.05, ForwardWindow: 2048, BackwardWindow: 1280}

	run := func(p Params) ([]int, float64) {
		order, err := Layout(g, Options{ForcedFirst: 0, UseHeap: true, Params: p})
		if err != nil {
			t.Error(err)
			return nil, 0
		}
		return order, ScoreWith(g, order, p, nil)
	}
	wantA, scoreA := run(pA)
	wantB, scoreB := run(pB)

	var wg sync.WaitGroup
	for _, side := range []struct {
		p     Params
		want  []int
		score float64
	}{{pA, wantA, scoreA}, {pB, wantB, scoreB}} {
		side := side
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &Scratch{}
			for i := 0; i < 20; i++ {
				order, err := Layout(g, Options{ForcedFirst: 0, UseHeap: true, Params: side.p})
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(order, side.want) {
					t.Errorf("concurrent layout diverged: got %v want %v", order, side.want)
					return
				}
				if s := ScoreWith(g, order, side.p, scratch); s != side.score {
					t.Errorf("concurrent score diverged: got %v want %v", s, side.score)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Package exttsp implements the Ext-TSP basic block reordering algorithm of
// Newell and Pupyrev ("Improved Basic Block Reordering", [49] in the paper),
// which Propeller's whole-program analysis uses for both intra-function and
// inter-procedural layout (§3.3, §4.7).
//
// Ext-TSP maximizes a proximity score over a weighted control-flow graph:
// an edge contributes its full weight when target directly follows source
// (fall-through), and a decaying fraction for short forward or backward
// jumps. The optimizer greedily merges chains of blocks by the most
// profitable merge. Two retrieval strategies are provided:
//
//   - naive: rescan all chain pairs per merge, the textbook formulation;
//   - heap: a priority queue with lazy invalidation, the "logarithmic time
//     retrieval of the most profitable action" improvement §4.7 describes
//     as necessary at warehouse scale.
//
// Both strategies evaluate the same candidate set with the same
// tie-breaking and produce identical layouts; only the retrieval cost
// differs, which is what the ablation benchmark measures.
package exttsp

import (
	"container/heap"
	"fmt"
	"sort"
)

// Default scoring constants from the Ext-TSP model (Newell & Pupyrev's
// published parameters). They are documentation and the zero-value
// resolution of Params — the scoring loops never read them directly, so
// evaluating several parameterizations concurrently is race-free.
const (
	FallthroughWeight = 1.0
	ForwardWeight     = 0.1
	BackwardWeight    = 0.1
	ForwardWindow     = 1024 // bytes
	BackwardWindow    = 640  // bytes
)

// Params are the Ext-TSP proximity-scoring parameters. The zero value
// means "the paper defaults" field by field: any field left at zero
// resolves to the matching package constant, so Params{} scores exactly
// like the historical package-level constants did (a property pinned by
// the golden-defaults test). To effectively disable a weight, pass a
// tiny non-zero value rather than zero.
type Params struct {
	// FallthroughWeight scales an edge whose target directly follows its
	// source (0 = FallthroughWeight, the default 1.0).
	FallthroughWeight float64
	// ForwardWeight scales a short forward jump (0 = ForwardWeight, 0.1).
	ForwardWeight float64
	// BackwardWeight scales a short backward jump (0 = BackwardWeight, 0.1).
	BackwardWeight float64
	// ForwardWindow is the forward-jump decay window in bytes
	// (0 = ForwardWindow, 1024).
	ForwardWindow int64
	// BackwardWindow is the backward-jump decay window in bytes
	// (0 = BackwardWindow, 640).
	BackwardWindow int64
}

// Resolve returns p with every zero field replaced by its paper-default
// value — the concrete parameterization the zero value denotes. Callers
// that fingerprint Params (e.g. layout-policy cache keys) should resolve
// first so a zero Params and an explicitly-spelled default never alias
// to different keys.
func (p Params) Resolve() Params {
	return p.normalize()
}

// normalize resolves zero fields to the paper defaults.
func (p Params) normalize() Params {
	if p.FallthroughWeight == 0 {
		p.FallthroughWeight = FallthroughWeight
	}
	if p.ForwardWeight == 0 {
		p.ForwardWeight = ForwardWeight
	}
	if p.BackwardWeight == 0 {
		p.BackwardWeight = BackwardWeight
	}
	if p.ForwardWindow == 0 {
		p.ForwardWindow = ForwardWindow
	}
	if p.BackwardWindow == 0 {
		p.BackwardWindow = BackwardWindow
	}
	return p
}

// Node is one layout unit (a basic block) with its code size and execution
// count.
type Node struct {
	Size  int64
	Count uint64
}

// Edge is a weighted directed edge between node indices.
type Edge struct {
	Src, Dst int
	Weight   uint64
}

// Graph is the weighted CFG handed to the optimizer.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// Options configure a layout run.
type Options struct {
	// ForcedFirst, when >= 0, pins the given node to position 0 of the
	// final order (the function entry for intra-function layout).
	ForcedFirst int

	// UseHeap selects the priority-queue merge retrieval; false selects
	// the naive quadratic rescan (kept for the ablation benchmark).
	UseHeap bool

	// MaxSplitChain bounds the chain length for which split-point merges
	// (X1-Y-X2) are explored; longer chains only try concatenations.
	// Zero means 128.
	MaxSplitChain int

	// Params are the proximity-scoring parameters; the zero value selects
	// the paper defaults.
	Params Params
}

func (o Options) maxSplit() int {
	if o.MaxSplitChain > 0 {
		return o.MaxSplitChain
	}
	return 128
}

// edgeGain scores one edge given the source end offset and target start
// offset in a candidate layout. The receiver must be normalized: every
// caller holds a normalize()d copy, so the hot loop never re-resolves
// defaults (and two goroutines with different Params never share state).
func (p Params) edgeGain(weight uint64, srcEnd, dstStart int64) float64 {
	w := float64(weight)
	if dstStart == srcEnd {
		return p.FallthroughWeight * w
	}
	if dstStart > srcEnd {
		d := dstStart - srcEnd
		if d < p.ForwardWindow {
			return p.ForwardWeight * w * (1 - float64(d)/float64(p.ForwardWindow))
		}
		return 0
	}
	d := srcEnd - dstStart
	if d < p.BackwardWindow {
		return p.BackwardWeight * w * (1 - float64(d)/float64(p.BackwardWindow))
	}
	return 0
}

// Scratch holds reusable buffers for repeated Score evaluations, so hot
// scoring loops (benchmarks, equivalence checks) stop allocating per call.
// The zero value is ready to use; a Scratch must not be shared between
// goroutines.
type Scratch struct {
	offset []int64
	gen    []int64
	epoch  int64
}

func (s *Scratch) grow(n int) {
	if len(s.offset) < n {
		s.offset = make([]int64, n)
		s.gen = make([]int64, n)
		s.epoch = 0
	}
}

// Score evaluates the Ext-TSP objective of a complete order (a permutation
// of node indices) under the default scoring parameters.
func Score(g *Graph, order []int) float64 {
	return ScoreWith(g, order, Params{}, nil)
}

// ScoreWith is Score under explicit scoring parameters, with
// caller-provided scratch buffers; nil scratch allocates fresh ones.
// Reusing one Scratch across calls keeps repeated scoring
// allocation-free.
func ScoreWith(g *Graph, order []int, p Params, s *Scratch) float64 {
	if s == nil {
		s = &Scratch{}
	}
	p = p.normalize()
	s.grow(len(g.Nodes))
	s.epoch++
	ep := s.epoch
	addr := int64(0)
	for _, n := range order {
		s.offset[n] = addr
		s.gen[n] = ep
		addr += g.Nodes[n].Size
	}
	var total float64
	for _, e := range g.Edges {
		if s.gen[e.Src] != ep || s.gen[e.Dst] != ep {
			continue
		}
		total += p.edgeGain(e.Weight, s.offset[e.Src]+g.Nodes[e.Src].Size, s.offset[e.Dst])
	}
	return total
}

// chain is a working unit of the merge process.
type chain struct {
	id    int
	nodes []int
	size  int64
	count uint64
	// score caches chainScore(nodes): a chain's internal score only
	// changes when the chain itself is rewritten by a merge, so bestMerge
	// never has to rescan the chain to price a candidate.
	score float64
	gen   int  // incremented on every mutation (heap invalidation)
	dead  bool // merged away
	// inEdges/outEdges index g.Edges with an endpoint in this chain; they
	// are rebuilt lazily from node membership.
}

// Layout computes a block order maximizing the Ext-TSP score.
func Layout(g *Graph, opts Options) ([]int, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, nil
	}
	if opts.ForcedFirst >= n {
		return nil, fmt.Errorf("exttsp: forced-first node %d out of range", opts.ForcedFirst)
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("exttsp: edge (%d,%d) out of range", e.Src, e.Dst)
		}
	}
	st := newState(g, opts)
	if opts.UseHeap {
		st.runHeap()
	} else {
		st.runNaive()
	}
	return st.finalOrder(), nil
}

type state struct {
	g      *Graph
	opts   Options
	chains []*chain
	owner  []int // node -> chain id
	// adjacency: chain id -> set of chain ids connected by >=1 edge
	// (recomputed from edges on demand via nodeEdges)
	nodeOut [][]int // node -> indices into g.Edges with Src == node
	nodeIn  [][]int // node -> indices into g.Edges with Dst == node

	// Reusable scratch indexed by node/chain id, replacing the per-call
	// map allocations of chainScore and neighbors. Entries are valid only
	// when their generation stamp matches the current epoch, so nothing
	// is ever cleared.
	pos    []int64 // node -> layout offset within the scored sequence
	posGen []int64 // node -> epoch stamp for pos
	nbGen  []int64 // chain id -> epoch stamp for neighbor dedup
	epoch  int64
	nbBuf  []int // reused neighbor id buffer (invalidated by next call)

	// pr is opts.Params resolved against the paper defaults, so scoring
	// never consults package-level state.
	pr Params
}

func newState(g *Graph, opts Options) *state {
	st := &state{g: g, opts: opts, pr: opts.Params.normalize()}
	st.chains = make([]*chain, len(g.Nodes))
	st.owner = make([]int, len(g.Nodes))
	for i := range g.Nodes {
		st.chains[i] = &chain{id: i, nodes: []int{i}, size: g.Nodes[i].Size, count: g.Nodes[i].Count}
		st.owner[i] = i
	}
	st.nodeOut = make([][]int, len(g.Nodes))
	st.nodeIn = make([][]int, len(g.Nodes))
	for ei, e := range g.Edges {
		if e.Src == e.Dst || e.Weight == 0 {
			continue // self-loops do not affect inter-chain merging
		}
		st.nodeOut[e.Src] = append(st.nodeOut[e.Src], ei)
		st.nodeIn[e.Dst] = append(st.nodeIn[e.Dst], ei)
	}
	st.pos = make([]int64, len(g.Nodes))
	st.posGen = make([]int64, len(g.Nodes))
	st.nbGen = make([]int64, len(g.Nodes))
	return st
}

// neighbors returns the live chain ids connected to chain c, ascending.
// The returned slice is scratch owned by st and is overwritten by the
// next neighbors call.
func (st *state) neighbors(c *chain) []int {
	st.epoch++
	ep := st.epoch
	st.nbGen[c.id] = ep
	out := st.nbBuf[:0]
	for _, node := range c.nodes {
		for _, ei := range st.nodeOut[node] {
			o := st.owner[st.g.Edges[ei].Dst]
			if st.nbGen[o] != ep {
				st.nbGen[o] = ep
				out = append(out, o)
			}
		}
		for _, ei := range st.nodeIn[node] {
			o := st.owner[st.g.Edges[ei].Src]
			if st.nbGen[o] != ep {
				st.nbGen[o] = ep
				out = append(out, o)
			}
		}
	}
	sort.Ints(out)
	st.nbBuf = out
	return out
}

// chainScore computes the Ext-TSP score of an ordered node sequence,
// counting only edges internal to the sequence.
func (st *state) chainScore(nodes []int) float64 {
	if len(nodes) == 1 {
		// Count self-loop contribution as zero; a single node has no
		// internal placement freedom.
		return 0
	}
	st.epoch++
	ep := st.epoch
	addr := int64(0)
	for _, nd := range nodes {
		st.pos[nd] = addr
		st.posGen[nd] = ep
		addr += st.g.Nodes[nd].Size
	}
	var total float64
	for _, nd := range nodes {
		for _, ei := range st.nodeOut[nd] {
			e := st.g.Edges[ei]
			if st.posGen[e.Dst] != ep {
				continue
			}
			total += st.pr.edgeGain(e.Weight, st.pos[e.Src]+st.g.Nodes[e.Src].Size, st.pos[e.Dst])
		}
	}
	return total
}

// mergeCandidate is one way of combining chains x and y.
type mergeCandidate struct {
	gain  float64
	score float64 // chainScore of order (becomes the merged chain's cache)
	x, y  int     // chain ids
	xGen  int
	yGen  int
	order []int // resulting node sequence
}

// bestMerge finds the highest-gain combination of two chains, honoring the
// forced-first constraint. Returns ok=false when no combination is legal.
// Both retrieval strategies call it with x.id < y.id, so the explored
// candidate set — and therefore the final layout — is identical for the
// naive and heap variants.
func (st *state) bestMerge(x, y *chain) (mergeCandidate, bool) {
	baseX := x.score
	baseY := y.score
	forced := st.opts.ForcedFirst

	legal := func(seq []int) bool {
		if forced < 0 {
			return true
		}
		hasForced := st.owner[forced] == x.id || st.owner[forced] == y.id
		if !hasForced {
			return true
		}
		return seq[0] == forced
	}

	best := mergeCandidate{gain: -1, x: x.id, y: y.id, xGen: x.gen, yGen: y.gen}
	try := func(seq []int) {
		if !legal(seq) {
			return
		}
		score := st.chainScore(seq)
		gain := score - baseX - baseY
		if gain > best.gain {
			best.gain = gain
			best.score = score
			best.order = seq
		}
	}

	concat := func(a, b []int) []int {
		out := make([]int, 0, len(a)+len(b))
		out = append(out, a...)
		return append(out, b...)
	}
	try(concat(x.nodes, y.nodes))
	try(concat(y.nodes, x.nodes))
	if len(x.nodes) <= st.opts.maxSplit() {
		for i := 1; i < len(x.nodes); i++ {
			seq := make([]int, 0, len(x.nodes)+len(y.nodes))
			seq = append(seq, x.nodes[:i]...)
			seq = append(seq, y.nodes...)
			seq = append(seq, x.nodes[i:]...)
			try(seq)
		}
	}
	if best.order == nil || best.gain <= 0 {
		return best, false
	}
	return best, true
}

// applyMerge folds chain y into chain x with the given node order.
func (st *state) applyMerge(c mergeCandidate) {
	x := st.chains[c.x]
	y := st.chains[c.y]
	x.nodes = c.order
	x.size += y.size
	x.count += y.count
	x.score = c.score
	x.gen++
	y.dead = true
	y.gen++
	for _, nd := range y.nodes {
		st.owner[nd] = x.id
	}
}

// runNaive repeatedly scans all connected chain pairs for the single best
// merge. This is the quadratic baseline the ablation benchmark compares
// against.
func (st *state) runNaive() {
	for {
		var best mergeCandidate
		found := false
		for _, x := range st.chains {
			if x.dead {
				continue
			}
			for _, yid := range st.neighbors(x) {
				if yid <= x.id {
					continue // each unordered pair once
				}
				y := st.chains[yid]
				if y.dead {
					continue
				}
				if c, ok := st.bestMerge(x, y); ok && (!found || c.gain > best.gain) {
					best = c
					found = true
				}
			}
		}
		if !found {
			return
		}
		st.applyMerge(best)
	}
}

// candidateHeap is a max-heap of merge candidates with lazy invalidation.
// Ties on gain break toward the lexicographically smallest (x, y) pair —
// exactly the pair the naive scan (ascending x, then ascending neighbor)
// would have committed to — so heap retrieval replays the naive merge
// sequence and the two strategies produce identical layouts.
type candidateHeap []mergeCandidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].x != h[j].x {
		return h[i].x < h[j].x
	}
	return h[i].y < h[j].y
}
func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(mergeCandidate)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// runHeap retrieves the most profitable merge from a priority queue,
// re-seeding candidates only for the chains a merge touched.
func (st *state) runHeap() {
	h := &candidateHeap{}
	push := func(x, y *chain) {
		if c, ok := st.bestMerge(x, y); ok {
			heap.Push(h, c)
		}
	}
	for _, x := range st.chains {
		for _, yid := range st.neighbors(x) {
			if yid > x.id {
				push(x, st.chains[yid])
			}
		}
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCandidate)
		x, y := st.chains[c.x], st.chains[c.y]
		if x.dead || y.dead || x.gen != c.xGen || y.gen != c.yGen {
			continue // stale entry
		}
		st.applyMerge(c)
		for _, nid := range st.neighbors(x) {
			nb := st.chains[nid]
			if nb.dead {
				continue
			}
			// Keep pairs in (lower id, higher id) order so the cached
			// candidate is the same one the naive rescan evaluates.
			if nb.id < x.id {
				push(nb, x)
			} else {
				push(x, nb)
			}
		}
	}
}

// finalOrder sorts surviving chains and concatenates them: the forced-first
// chain leads, then chains by decreasing execution density, matching the
// Ext-TSP paper's chain ordering.
func (st *state) finalOrder() []int {
	var live []*chain
	for _, c := range st.chains {
		if !c.dead {
			live = append(live, c)
		}
	}
	forced := st.opts.ForcedFirst
	density := func(c *chain) float64 {
		if c.size == 0 {
			return float64(c.count)
		}
		return float64(c.count) / float64(c.size)
	}
	sort.SliceStable(live, func(i, j int) bool {
		ci, cj := live[i], live[j]
		fi := forced >= 0 && st.owner[forced] == ci.id
		fj := forced >= 0 && st.owner[forced] == cj.id
		if fi != fj {
			return fi
		}
		di, dj := density(ci), density(cj)
		if di != dj {
			return di > dj
		}
		return ci.id < cj.id
	})
	var order []int
	for _, c := range live {
		order = append(order, c.nodes...)
	}
	return order
}

// Package exttsp implements the Ext-TSP basic block reordering algorithm of
// Newell and Pupyrev ("Improved Basic Block Reordering", [49] in the paper),
// which Propeller's whole-program analysis uses for both intra-function and
// inter-procedural layout (§3.3, §4.7).
//
// Ext-TSP maximizes a proximity score over a weighted control-flow graph:
// an edge contributes its full weight when target directly follows source
// (fall-through), and a decaying fraction for short forward or backward
// jumps. The optimizer greedily merges chains of blocks by the most
// profitable merge. Two retrieval strategies are provided:
//
//   - naive: rescan all chain pairs per merge, the textbook formulation;
//   - heap: a priority queue with lazy invalidation, the "logarithmic time
//     retrieval of the most profitable action" improvement §4.7 describes
//     as necessary at warehouse scale.
package exttsp

import (
	"container/heap"
	"fmt"
	"sort"
)

// Scoring constants from the Ext-TSP model.
const (
	FallthroughWeight = 1.0
	ForwardWeight     = 0.1
	BackwardWeight    = 0.1
	ForwardWindow     = 1024 // bytes
	BackwardWindow    = 640  // bytes
)

// Node is one layout unit (a basic block) with its code size and execution
// count.
type Node struct {
	Size  int64
	Count uint64
}

// Edge is a weighted directed edge between node indices.
type Edge struct {
	Src, Dst int
	Weight   uint64
}

// Graph is the weighted CFG handed to the optimizer.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// Options configure a layout run.
type Options struct {
	// ForcedFirst, when >= 0, pins the given node to position 0 of the
	// final order (the function entry for intra-function layout).
	ForcedFirst int

	// UseHeap selects the priority-queue merge retrieval; false selects
	// the naive quadratic rescan (kept for the ablation benchmark).
	UseHeap bool

	// MaxSplitChain bounds the chain length for which split-point merges
	// (X1-Y-X2) are explored; longer chains only try concatenations.
	// Zero means 128.
	MaxSplitChain int
}

func (o Options) maxSplit() int {
	if o.MaxSplitChain > 0 {
		return o.MaxSplitChain
	}
	return 128
}

// edgeGain scores one edge given the source end offset and target start
// offset in a candidate layout.
func edgeGain(weight uint64, srcEnd, dstStart int64) float64 {
	w := float64(weight)
	if dstStart == srcEnd {
		return FallthroughWeight * w
	}
	if dstStart > srcEnd {
		d := dstStart - srcEnd
		if d < ForwardWindow {
			return ForwardWeight * w * (1 - float64(d)/ForwardWindow)
		}
		return 0
	}
	d := srcEnd - dstStart
	if d < BackwardWindow {
		return BackwardWeight * w * (1 - float64(d)/BackwardWindow)
	}
	return 0
}

// Score evaluates the Ext-TSP objective of a complete order (a permutation
// of node indices).
func Score(g *Graph, order []int) float64 {
	offset := make([]int64, len(g.Nodes))
	addr := int64(0)
	seen := make([]bool, len(g.Nodes))
	for _, n := range order {
		offset[n] = addr
		addr += g.Nodes[n].Size
		seen[n] = true
	}
	var total float64
	for _, e := range g.Edges {
		if !seen[e.Src] || !seen[e.Dst] {
			continue
		}
		total += edgeGain(e.Weight, offset[e.Src]+g.Nodes[e.Src].Size, offset[e.Dst])
	}
	return total
}

// chain is a working unit of the merge process.
type chain struct {
	id    int
	nodes []int
	size  int64
	count uint64
	gen   int  // incremented on every mutation (heap invalidation)
	dead  bool // merged away
	// inEdges/outEdges index g.Edges with an endpoint in this chain; they
	// are rebuilt lazily from node membership.
}

// Layout computes a block order maximizing the Ext-TSP score.
func Layout(g *Graph, opts Options) ([]int, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, nil
	}
	if opts.ForcedFirst >= n {
		return nil, fmt.Errorf("exttsp: forced-first node %d out of range", opts.ForcedFirst)
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("exttsp: edge (%d,%d) out of range", e.Src, e.Dst)
		}
	}
	st := newState(g, opts)
	if opts.UseHeap {
		st.runHeap()
	} else {
		st.runNaive()
	}
	return st.finalOrder(), nil
}

type state struct {
	g      *Graph
	opts   Options
	chains []*chain
	owner  []int // node -> chain id
	// adjacency: chain id -> set of chain ids connected by >=1 edge
	// (recomputed from edges on demand via nodeEdges)
	nodeOut [][]int // node -> indices into g.Edges with Src == node
	nodeIn  [][]int // node -> indices into g.Edges with Dst == node
}

func newState(g *Graph, opts Options) *state {
	st := &state{g: g, opts: opts}
	st.chains = make([]*chain, len(g.Nodes))
	st.owner = make([]int, len(g.Nodes))
	for i := range g.Nodes {
		st.chains[i] = &chain{id: i, nodes: []int{i}, size: g.Nodes[i].Size, count: g.Nodes[i].Count}
		st.owner[i] = i
	}
	st.nodeOut = make([][]int, len(g.Nodes))
	st.nodeIn = make([][]int, len(g.Nodes))
	for ei, e := range g.Edges {
		if e.Src == e.Dst || e.Weight == 0 {
			continue // self-loops do not affect inter-chain merging
		}
		st.nodeOut[e.Src] = append(st.nodeOut[e.Src], ei)
		st.nodeIn[e.Dst] = append(st.nodeIn[e.Dst], ei)
	}
	return st
}

// neighbors returns the live chain ids connected to chain c.
func (st *state) neighbors(c *chain) []int {
	seen := map[int]bool{c.id: true}
	var out []int
	for _, node := range c.nodes {
		for _, ei := range st.nodeOut[node] {
			o := st.owner[st.g.Edges[ei].Dst]
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
		for _, ei := range st.nodeIn[node] {
			o := st.owner[st.g.Edges[ei].Src]
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	sort.Ints(out)
	return out
}

// chainScore computes the Ext-TSP score of an ordered node sequence,
// counting only edges internal to the sequence.
func (st *state) chainScore(nodes []int) float64 {
	if len(nodes) == 1 {
		// Count self-loop contribution as zero; a single node has no
		// internal placement freedom.
		return 0
	}
	pos := make(map[int]int64, len(nodes))
	addr := int64(0)
	for _, nd := range nodes {
		pos[nd] = addr
		addr += st.g.Nodes[nd].Size
	}
	var total float64
	for _, nd := range nodes {
		for _, ei := range st.nodeOut[nd] {
			e := st.g.Edges[ei]
			dp, ok := pos[e.Dst]
			if !ok {
				continue
			}
			total += edgeGain(e.Weight, pos[e.Src]+st.g.Nodes[e.Src].Size, dp)
		}
	}
	return total
}

// mergeCandidate is one way of combining chains x and y.
type mergeCandidate struct {
	gain  float64
	x, y  int // chain ids
	xGen  int
	yGen  int
	order []int // resulting node sequence
}

// bestMerge finds the highest-gain combination of two chains, honoring the
// forced-first constraint. Returns ok=false when no combination is legal.
func (st *state) bestMerge(x, y *chain) (mergeCandidate, bool) {
	baseX := st.chainScore(x.nodes)
	baseY := st.chainScore(y.nodes)
	forced := st.opts.ForcedFirst

	legal := func(seq []int) bool {
		if forced < 0 {
			return true
		}
		hasForced := st.owner[forced] == x.id || st.owner[forced] == y.id
		if !hasForced {
			return true
		}
		return seq[0] == forced
	}

	best := mergeCandidate{gain: -1, x: x.id, y: y.id, xGen: x.gen, yGen: y.gen}
	try := func(seq []int) {
		if !legal(seq) {
			return
		}
		gain := st.chainScore(seq) - baseX - baseY
		if gain > best.gain {
			best.gain = gain
			best.order = seq
		}
	}

	concat := func(a, b []int) []int {
		out := make([]int, 0, len(a)+len(b))
		out = append(out, a...)
		return append(out, b...)
	}
	try(concat(x.nodes, y.nodes))
	try(concat(y.nodes, x.nodes))
	if len(x.nodes) <= st.opts.maxSplit() {
		for i := 1; i < len(x.nodes); i++ {
			seq := make([]int, 0, len(x.nodes)+len(y.nodes))
			seq = append(seq, x.nodes[:i]...)
			seq = append(seq, y.nodes...)
			seq = append(seq, x.nodes[i:]...)
			try(seq)
		}
	}
	if best.order == nil || best.gain <= 0 {
		return best, false
	}
	return best, true
}

// applyMerge folds chain y into chain x with the given node order.
func (st *state) applyMerge(c mergeCandidate) {
	x := st.chains[c.x]
	y := st.chains[c.y]
	x.nodes = c.order
	x.size += y.size
	x.count += y.count
	x.gen++
	y.dead = true
	y.gen++
	for _, nd := range y.nodes {
		st.owner[nd] = x.id
	}
}

// runNaive repeatedly scans all connected chain pairs for the single best
// merge. This is the quadratic baseline the ablation benchmark compares
// against.
func (st *state) runNaive() {
	for {
		var best mergeCandidate
		found := false
		for _, x := range st.chains {
			if x.dead {
				continue
			}
			for _, yid := range st.neighbors(x) {
				if yid <= x.id {
					continue // each unordered pair once
				}
				y := st.chains[yid]
				if y.dead {
					continue
				}
				if c, ok := st.bestMerge(x, y); ok && (!found || c.gain > best.gain) {
					best = c
					found = true
				}
			}
		}
		if !found {
			return
		}
		st.applyMerge(best)
	}
}

// candidateHeap is a max-heap of merge candidates with lazy invalidation.
type candidateHeap []mergeCandidate

func (h candidateHeap) Len() int           { return len(h) }
func (h candidateHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h candidateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)        { *h = append(*h, x.(mergeCandidate)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// runHeap retrieves the most profitable merge from a priority queue,
// re-seeding candidates only for the chains a merge touched.
func (st *state) runHeap() {
	h := &candidateHeap{}
	push := func(x, y *chain) {
		if c, ok := st.bestMerge(x, y); ok {
			heap.Push(h, c)
		}
	}
	for _, x := range st.chains {
		for _, yid := range st.neighbors(x) {
			if yid > x.id {
				push(x, st.chains[yid])
			}
		}
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCandidate)
		x, y := st.chains[c.x], st.chains[c.y]
		if x.dead || y.dead || x.gen != c.xGen || y.gen != c.yGen {
			continue // stale entry
		}
		st.applyMerge(c)
		for _, nid := range st.neighbors(x) {
			nb := st.chains[nid]
			if !nb.dead {
				push(x, nb)
			}
		}
	}
}

// finalOrder sorts surviving chains and concatenates them: the forced-first
// chain leads, then chains by decreasing execution density, matching the
// Ext-TSP paper's chain ordering.
func (st *state) finalOrder() []int {
	var live []*chain
	for _, c := range st.chains {
		if !c.dead {
			live = append(live, c)
		}
	}
	forced := st.opts.ForcedFirst
	density := func(c *chain) float64 {
		if c.size == 0 {
			return float64(c.count)
		}
		return float64(c.count) / float64(c.size)
	}
	sort.SliceStable(live, func(i, j int) bool {
		ci, cj := live[i], live[j]
		fi := forced >= 0 && st.owner[forced] == ci.id
		fj := forced >= 0 && st.owner[forced] == cj.id
		if fi != fj {
			return fi
		}
		di, dj := density(ci), density(cj)
		if di != dj {
			return di > dj
		}
		return ci.id < cj.id
	})
	var order []int
	for _, c := range live {
		order = append(order, c.nodes...)
	}
	return order
}

package exttsp

import (
	"math/rand"
	"reflect"
	"testing"
)

// diamondGraph: 0 -> 1 (hot) / 2 (cold) -> 3.
func diamondGraph() *Graph {
	return &Graph{
		Nodes: []Node{{Size: 16, Count: 100}, {Size: 16, Count: 90}, {Size: 16, Count: 10}, {Size: 16, Count: 100}},
		Edges: []Edge{
			{Src: 0, Dst: 1, Weight: 90},
			{Src: 0, Dst: 2, Weight: 10},
			{Src: 1, Dst: 3, Weight: 90},
			{Src: 2, Dst: 3, Weight: 10},
		},
	}
}

func checkPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d nodes, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[v] = true
	}
}

func TestDiamondPrefersHotPath(t *testing.T) {
	g := diamondGraph()
	for _, useHeap := range []bool{false, true} {
		order, err := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, order, 4)
		if order[0] != 0 {
			t.Errorf("heap=%v: entry not first: %v", useHeap, order)
		}
		// The hot chain 0-1-3 must be contiguous.
		pos := map[int]int{}
		for i, v := range order {
			pos[v] = i
		}
		if pos[1] != pos[0]+1 || pos[3] != pos[1]+1 {
			t.Errorf("heap=%v: hot path not contiguous: %v", useHeap, order)
		}
	}
}

func TestScoreRewardsFallthrough(t *testing.T) {
	g := diamondGraph()
	hot := Score(g, []int{0, 1, 3, 2})
	cold := Score(g, []int{0, 2, 3, 1})
	if hot <= cold {
		t.Errorf("hot layout score %f <= cold layout score %f", hot, cold)
	}
}

func TestEdgeGainModel(t *testing.T) {
	p := Params{}.normalize()
	if g := p.edgeGain(100, 64, 64); g != 100*FallthroughWeight {
		t.Errorf("fallthrough gain = %f", g)
	}
	if g := p.edgeGain(100, 64, 64+512); g <= 0 || g >= 100*ForwardWeight {
		t.Errorf("forward gain = %f out of (0, %f)", g, 100*ForwardWeight)
	}
	if g := p.edgeGain(100, 64, 64+ForwardWindow); g != 0 {
		t.Errorf("out-of-window forward gain = %f", g)
	}
	if g := p.edgeGain(100, 640, 320); g <= 0 || g >= 100*BackwardWeight {
		t.Errorf("backward gain = %f out of (0, %f)", g, 100*BackwardWeight)
	}
	if g := p.edgeGain(100, BackwardWindow+64, 64); g != 0 {
		t.Errorf("out-of-window backward gain = %f", g)
	}
	// Nearer forward targets gain more.
	near := p.edgeGain(100, 0, 64)
	far := p.edgeGain(100, 0, 512)
	if near <= far {
		t.Errorf("near gain %f <= far gain %f", near, far)
	}
}

func TestForcedFirstRespected(t *testing.T) {
	// Edge into the entry would tempt the optimizer to put 1 before 0.
	g := &Graph{
		Nodes: []Node{{Size: 8, Count: 10}, {Size: 8, Count: 1000}},
		Edges: []Edge{{Src: 1, Dst: 0, Weight: 1000}},
	}
	for _, useHeap := range []bool{false, true} {
		order, err := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
		if err != nil {
			t.Fatal(err)
		}
		if order[0] != 0 {
			t.Errorf("heap=%v: forced-first violated: %v", useHeap, order)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	order, err := Layout(&Graph{}, Options{ForcedFirst: -1})
	if err != nil || len(order) != 0 {
		t.Errorf("empty graph: %v, %v", order, err)
	}
	g := &Graph{Nodes: []Node{{Size: 4, Count: 1}}}
	order, err = Layout(g, Options{ForcedFirst: 0})
	if err != nil || !reflect.DeepEqual(order, []int{0}) {
		t.Errorf("singleton: %v, %v", order, err)
	}
}

func TestRejectsBadInput(t *testing.T) {
	g := &Graph{Nodes: []Node{{Size: 4}}, Edges: []Edge{{Src: 0, Dst: 5, Weight: 1}}}
	if _, err := Layout(g, Options{ForcedFirst: -1}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Layout(g, Options{ForcedFirst: 9}); err == nil {
		t.Error("out-of-range forced-first accepted")
	}
}

func randGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{Nodes: make([]Node, n)}
	for i := range g.Nodes {
		g.Nodes[i] = Node{Size: int64(8 + rng.Intn(64)), Count: uint64(rng.Intn(1000))}
	}
	// Chain-ish CFG plus random extra edges.
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, Weight: uint64(1 + rng.Intn(100))})
	}
	extra := n / 2
	for i := 0; i < extra; i++ {
		g.Edges = append(g.Edges, Edge{Src: rng.Intn(n), Dst: rng.Intn(n), Weight: uint64(rng.Intn(50))})
	}
	return g
}

// Property: both retrieval strategies produce valid permutations whose
// score is at least the score of the identity layout (the merge process
// starts from singletons and only applies positive-gain merges, and the
// identity order is reachable, so near-equality is expected; we assert
// it is not dramatically worse).
func TestLayoutQualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randGraph(rng, n)
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		idScore := Score(g, identity)
		for _, useHeap := range []bool{false, true} {
			order, err := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
			if err != nil {
				t.Fatal(err)
			}
			checkPermutation(t, order, n)
			if order[0] != 0 {
				t.Fatalf("trial %d heap=%v: entry not first", trial, useHeap)
			}
			s := Score(g, order)
			if s < 0.5*idScore {
				t.Errorf("trial %d heap=%v: score %f far below identity %f", trial, useHeap, s, idScore)
			}
		}
	}
}

// The heap-based retrieval must produce scores comparable to the naive
// exhaustive rescan (they can differ on ties, but not systematically).
func TestHeapMatchesNaiveQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var naiveTotal, heapTotal float64
	for trial := 0; trial < 20; trial++ {
		g := randGraph(rng, 2+rng.Intn(30))
		on, err := Layout(g, Options{ForcedFirst: 0})
		if err != nil {
			t.Fatal(err)
		}
		oh, err := Layout(g, Options{ForcedFirst: 0, UseHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		naiveTotal += Score(g, on)
		heapTotal += Score(g, oh)
	}
	if heapTotal < 0.9*naiveTotal {
		t.Errorf("heap retrieval quality %.1f well below naive %.1f", heapTotal, naiveTotal)
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randGraph(rng, 25)
	for _, useHeap := range []bool{false, true} {
		a, _ := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
		b, _ := Layout(g, Options{ForcedFirst: 0, UseHeap: useHeap})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("heap=%v: nondeterministic layout", useHeap)
		}
	}
}

func TestColdChainsOrderedByDensity(t *testing.T) {
	// Disconnected nodes: layout must order them by count/size density.
	g := &Graph{
		Nodes: []Node{
			{Size: 8, Count: 100}, // entry
			{Size: 8, Count: 1},   // cold
			{Size: 8, Count: 50},  // warm
		},
	}
	order, err := Layout(g, Options{ForcedFirst: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 2, 1}) {
		t.Errorf("density ordering: got %v, want [0 2 1]", order)
	}
}

func TestMaxSplitChainBoundsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 60)
	// A tiny split bound must still produce a valid permutation; quality
	// may differ from the default, but never validity.
	order, err := Layout(g, Options{ForcedFirst: 0, MaxSplitChain: 1, UseHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, order, 60)
	def, err := Layout(g, Options{ForcedFirst: 0, UseHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	if Score(g, def) < Score(g, order) {
		t.Log("default split bound scored lower than restricted; acceptable but unusual")
	}
}

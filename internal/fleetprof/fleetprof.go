// Package fleetprof is the fleet-scale profile collection tier of §2/§3.1:
// the paper's premise is that LBR samples are gathered continuously on
// production machines across a warehouse fleet and shipped to a central
// aggregation step that feeds the whole-program analysis. This package
// simulates that tier end to end, production-shaped:
//
//   - N collector hosts ship their LBR samples in batches (the payload
//     reuses the profile wire format) over an in-process Transport that
//     models loss, latency and duplication deterministically;
//   - a sharded ingestion Service receives batches through bounded queues
//     with backpressure, deduplicates by (host, sequence) idempotency
//     keys, and rejects batches whose build ID does not match the serving
//     binary;
//   - shards merge with the same deterministic commutative discipline the
//     parallel WPA established: the merged profile is bit-identical at
//     every shard/worker count and under injected faults;
//   - an admission Gate (minimum samples + hot-function coverage) tells
//     Phase 3 when the fleet profile is ready for analysis.
package fleetprof

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"propeller/internal/profile"
)

// ErrQueueFull is the backpressure signal: the target shard's bounded
// queue is at capacity and the client should back off and retry.
var ErrQueueFull = errors.New("fleetprof: ingest queue full")

// Batch is one shipment of LBR samples from a collector host. Payload is
// a serialized profile.Profile carrying the host's sample slice plus the
// header (binary, build ID, period) the service validates. (Host, Seq) is
// the idempotency key: redelivered or duplicated batches are accepted at
// most once.
type Batch struct {
	Host    int
	Seq     int
	Payload []byte
}

type batchKey struct{ host, seq int }

// storedBatch is an accepted, decoded batch retained until merge.
type storedBatch struct {
	header  profile.Header
	samples []profile.Sample
	records int
	// rejected marks a tombstone: the key arrived but failed validation.
	// Redeliveries of a tombstoned key count as duplicates, not as fresh
	// rejections.
	rejected bool
}

// ServiceConfig sizes the ingestion service.
type ServiceConfig struct {
	// Shards is the number of independent ingest queues (default 1).
	// Batches route to shards by a deterministic hash of their
	// idempotency key, so a redelivery always lands on the same shard.
	Shards int

	// WorkersPerShard is the decode/validate parallelism behind each
	// queue (default 1).
	WorkersPerShard int

	// QueueDepth bounds each shard's queue (default 64). A full queue
	// rejects the submit with ErrQueueFull — the backpressure that keeps
	// a slow analysis tier from buffering the whole fleet's output.
	QueueDepth int

	// BuildID is the content hash of the serving binary. When non-empty,
	// a batch recording a different (or no) build ID is rejected and
	// counted — the build-ID matching of Google's propeller tooling.
	BuildID string

	// IngestDelay adds a real per-batch processing delay in the workers.
	// Zero in production use; tests use it to force queue backpressure
	// deterministically.
	IngestDelay time.Duration
}

func (c ServiceConfig) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c ServiceConfig) workers() int {
	if c.WorkersPerShard < 1 {
		return 1
	}
	return c.WorkersPerShard
}

func (c ServiceConfig) queueDepth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

type shard struct {
	ch        chan Batch
	wg        sync.WaitGroup
	highWater atomic.Int64

	mu      sync.Mutex
	batches map[batchKey]*storedBatch
}

// Service is the sharded ingestion endpoint.
type Service struct {
	cfg    ServiceConfig
	shards []*shard

	accepted        atomic.Int64
	acceptedSamples atomic.Int64
	acceptedRecords atomic.Int64
	rejectedBuildID atomic.Int64
	corrupt         atomic.Int64
	duplicates      atomic.Int64
	queueFull       atomic.Int64

	// Modeled ingest cost counts only accepted batches, so it is
	// identical at every shard/worker count and under every injected
	// fault pattern (duplicates and rejects never contribute). Only the
	// integer record maximum is tracked here; the float cost is derived
	// from the accepted totals in Stats(), because summing per-batch
	// float costs in worker-completion order would make the modeled
	// time irreproducible in the last ulp.
	maxBatchRecords atomic.Int64
	clientStatsMu   sync.Mutex
	clientStats     clientAggregate

	drained bool
}

type clientAggregate struct {
	sent          int64
	retried       int64
	lost          int64
	dup           int64
	dropped       int64
	maxDownsample int64
	stallSeconds  float64
	maxHostSend   float64
	totalSendCost float64
}

// NewService starts the shard workers and returns the ready service.
func NewService(cfg ServiceConfig) *Service {
	s := &Service{cfg: cfg}
	for i := 0; i < cfg.shards(); i++ {
		sh := &shard{
			ch:      make(chan Batch, cfg.queueDepth()),
			batches: make(map[batchKey]*storedBatch),
		}
		s.shards = append(s.shards, sh)
		for w := 0; w < cfg.workers(); w++ {
			sh.wg.Add(1)
			go func(sh *shard) {
				defer sh.wg.Done()
				for b := range sh.ch {
					s.ingest(sh, b)
				}
			}(sh)
		}
	}
	return s
}

// shardOf routes an idempotency key to its shard: deterministic, so every
// redelivery of a key lands where its dedup record lives.
func shardOf(host, seq, shards int) int {
	h := splitmix64(uint64(host)<<32 ^ uint64(uint32(seq)) ^ 0x9e3779b97f4a7c15)
	return int(h % uint64(shards))
}

// Submit offers a batch to its shard queue. It never blocks: a full queue
// returns ErrQueueFull immediately so the client's retry/backoff loop —
// not an unbounded buffer — absorbs the overload.
func (s *Service) Submit(b Batch) error {
	sh := s.shards[shardOf(b.Host, b.Seq, len(s.shards))]
	select {
	case sh.ch <- b:
		if depth := int64(len(sh.ch)); depth > sh.highWater.Load() {
			sh.highWater.Store(depth) // racy max: close enough for a high-water stat
		}
		return nil
	default:
		s.queueFull.Add(1)
		return ErrQueueFull
	}
}

// ingest validates, deduplicates and stores one batch.
func (s *Service) ingest(sh *shard, b Batch) {
	if s.cfg.IngestDelay > 0 {
		time.Sleep(s.cfg.IngestDelay)
	}
	key := batchKey{b.Host, b.Seq}
	sh.mu.Lock()
	if _, dup := sh.batches[key]; dup {
		sh.mu.Unlock()
		s.duplicates.Add(1)
		return
	}
	// Reserve the key before decoding so a concurrent redelivery on
	// another worker of this shard cannot double-store it.
	reserved := &storedBatch{rejected: true}
	sh.batches[key] = reserved
	sh.mu.Unlock()

	p, err := profile.Read(bytes.NewReader(b.Payload))
	if err != nil {
		s.corrupt.Add(1)
		return
	}
	if s.cfg.BuildID != "" && p.BuildID != s.cfg.BuildID {
		s.rejectedBuildID.Add(1)
		return
	}
	records := 0
	for _, smp := range p.Samples {
		records += len(smp.Records)
	}
	sh.mu.Lock()
	sh.batches[key] = &storedBatch{
		header:  profile.Header{Binary: p.Binary, BuildID: p.BuildID, Period: p.Period},
		samples: p.Samples,
		records: records,
	}
	sh.mu.Unlock()
	s.accepted.Add(1)
	s.acceptedSamples.Add(int64(len(p.Samples)))
	s.acceptedRecords.Add(int64(records))

	for {
		cur := s.maxBatchRecords.Load()
		if int64(records) <= cur || s.maxBatchRecords.CompareAndSwap(cur, int64(records)) {
			break
		}
	}
}

// Drain closes the shard queues and waits for every in-flight batch to be
// processed. After Drain the merged profile is final; Submit must not be
// called again.
func (s *Service) Drain() {
	if s.drained {
		return
	}
	s.drained = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	for _, sh := range s.shards {
		sh.wg.Wait()
	}
}

// MergedProfile merges every accepted batch into one profile. The merge
// is canonical — hosts ascending, sequence ascending, samples in batch
// order — so the bytes are identical no matter how batches were sharded,
// reordered, duplicated or retried on their way in. Exactly the
// commutative-merge discipline the parallel WPA uses for its shards.
func (s *Service) MergedProfile() (*profile.Profile, error) {
	type entry struct {
		key batchKey
		b   *storedBatch
	}
	var entries []entry
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, b := range sh.batches {
			if !b.rejected {
				entries = append(entries, entry{k, b})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.host != entries[j].key.host {
			return entries[i].key.host < entries[j].key.host
		}
		return entries[i].key.seq < entries[j].key.seq
	})
	out := &profile.Profile{}
	for _, e := range entries {
		h := e.b.header
		if out.Binary == "" {
			out.Binary = h.Binary
		}
		if out.BuildID == "" {
			out.BuildID = h.BuildID
		} else if h.BuildID != "" && h.BuildID != out.BuildID {
			return nil, fmt.Errorf("fleetprof: build ID mismatch among accepted batches")
		}
		if out.Period == 0 {
			out.Period = h.Period
		} else if h.Period != 0 && h.Period != out.Period {
			return nil, fmt.Errorf("fleetprof: sampling period mismatch among accepted batches (%d vs %d)", out.Period, h.Period)
		}
		out.Samples = append(out.Samples, e.b.samples...)
	}
	return out, nil
}

// IngestStats is the service's observability surface: server-side
// accept/reject/duplicate accounting plus the client-side aggregates
// RunFleet folds in, and the deterministic modeled-time quantities the
// scaling sweep derives its makespan from.
type IngestStats struct {
	AcceptedBatches  int64 `json:"acceptedBatches"`
	AcceptedSamples  int64 `json:"acceptedSamples"`
	AcceptedRecords  int64 `json:"acceptedRecords"`
	RejectedBuildID  int64 `json:"rejectedBuildID"`
	CorruptBatches   int64 `json:"corruptBatches"`
	DuplicateBatches int64 `json:"duplicateBatches"`
	QueueFullRejects int64 `json:"queueFullRejects"`
	QueueHighWater   int   `json:"queueHighWater"`

	// Client-side aggregates (folded in by RunFleet).
	SentBatches    int64 `json:"sentBatches"`
	RetriedSends   int64 `json:"retriedSends"`
	LostDeliveries int64 `json:"lostDeliveries"`
	DupDeliveries  int64 `json:"dupDeliveries"`
	// DroppedBatches counts batches abandoned after a collector's bounded
	// attempt budget ran out against a persistently full shard queue.
	DroppedBatches int64 `json:"droppedBatches"`
	// MaxDownsample is the largest sampling-rate divisor any collector
	// adapted to under sustained backpressure (1 = nobody throttled).
	MaxDownsample int64   `json:"maxDownsample"`
	StallSeconds  float64 `json:"stallSeconds"`

	// Modeled time (deterministic: unaffected by real scheduling).
	ModeledSendSeconds    float64 `json:"modeledSendSeconds"`    // summed over hosts
	MaxHostSendSeconds    float64 `json:"maxHostSendSeconds"`    // critical client path
	ModeledIngestSeconds  float64 `json:"modeledIngestSeconds"`  // summed over accepted batches
	MaxBatchIngestSeconds float64 `json:"maxBatchIngestSeconds"` // largest single batch

	// HostBatches and HostSamples are per-host acceptance coverage.
	HostBatches map[int]int64 `json:"hostBatches"`
	HostSamples map[int]int64 `json:"hostSamples"`
}

// Stats snapshots the service counters. Call after Drain for final
// numbers; mid-run snapshots are consistent but momentary.
func (s *Service) Stats() IngestStats {
	st := IngestStats{
		AcceptedBatches:  s.accepted.Load(),
		AcceptedSamples:  s.acceptedSamples.Load(),
		AcceptedRecords:  s.acceptedRecords.Load(),
		RejectedBuildID:  s.rejectedBuildID.Load(),
		CorruptBatches:   s.corrupt.Load(),
		DuplicateBatches: s.duplicates.Load(),
		QueueFullRejects: s.queueFull.Load(),
		HostBatches:      map[int]int64{},
		HostSamples:      map[int]int64{},
	}
	for _, sh := range s.shards {
		if hw := int(sh.highWater.Load()); hw > st.QueueHighWater {
			st.QueueHighWater = hw
		}
		sh.mu.Lock()
		for k, b := range sh.batches {
			if !b.rejected {
				st.HostBatches[k.host]++
				st.HostSamples[k.host] += int64(len(b.samples))
			}
		}
		sh.mu.Unlock()
	}
	// Derived from order-independent integer totals: sum over accepted
	// batches of (base + records*per) == accepted*base + totalRecords*per.
	st.ModeledIngestSeconds = float64(st.AcceptedBatches)*IngestBatchBaseSeconds +
		float64(st.AcceptedRecords)*IngestPerRecordSeconds
	if max := s.maxBatchRecords.Load(); st.AcceptedBatches > 0 {
		st.MaxBatchIngestSeconds = IngestBatchBaseSeconds + float64(max)*IngestPerRecordSeconds
	}
	s.clientStatsMu.Lock()
	ca := s.clientStats
	s.clientStatsMu.Unlock()
	st.SentBatches = ca.sent
	st.RetriedSends = ca.retried
	st.LostDeliveries = ca.lost
	st.DupDeliveries = ca.dup
	st.DroppedBatches = ca.dropped
	st.MaxDownsample = ca.maxDownsample
	st.StallSeconds = ca.stallSeconds
	st.MaxHostSendSeconds = ca.maxHostSend
	st.ModeledSendSeconds = ca.totalSendCost
	return st
}

// foldClient merges one collector's stats into the service aggregate.
func (s *Service) foldClient(cs CollectorStats) {
	s.clientStatsMu.Lock()
	defer s.clientStatsMu.Unlock()
	s.clientStats.sent += cs.Sent
	s.clientStats.retried += cs.Retried
	s.clientStats.lost += cs.Lost
	s.clientStats.dup += cs.Dup
	s.clientStats.dropped += cs.Dropped
	if cs.Downsample > s.clientStats.maxDownsample {
		s.clientStats.maxDownsample = cs.Downsample
	}
	s.clientStats.stallSeconds += cs.StallSeconds
	s.clientStats.totalSendCost += cs.ModeledSendSeconds
	if cs.ModeledSendSeconds > s.clientStats.maxHostSend {
		s.clientStats.maxHostSend = cs.ModeledSendSeconds
	}
}

// Statusz writes the /statusz-style plain-text snapshot.
func (s *Service) Statusz(w io.Writer) {
	fmt.Fprintf(w, "fleetprof ingestion service: %d shards x %d workers, queue depth %d\n",
		s.cfg.shards(), s.cfg.workers(), s.cfg.queueDepth())
	if s.cfg.BuildID != "" {
		fmt.Fprintf(w, "serving build ID: %.16s..\n", s.cfg.BuildID)
	}
	s.Stats().WriteText(w)
}

// WriteText renders the stats in the same plain-text form Statusz uses,
// for callers that only kept the stats (e.g. after the service is gone).
func (st IngestStats) WriteText(w io.Writer) {
	fmt.Fprintf(w, "batches: accepted=%d duplicate=%d rejected-buildid=%d corrupt=%d\n",
		st.AcceptedBatches, st.DuplicateBatches, st.RejectedBuildID, st.CorruptBatches)
	fmt.Fprintf(w, "samples: %d (%d records)\n", st.AcceptedSamples, st.AcceptedRecords)
	fmt.Fprintf(w, "backpressure: queue-full rejects=%d high-water=%d client stall=%.3fs\n",
		st.QueueFullRejects, st.QueueHighWater, st.StallSeconds)
	fmt.Fprintf(w, "client: sent=%d retried=%d lost=%d dup-delivered=%d dropped=%d max-downsample=%dx\n",
		st.SentBatches, st.RetriedSends, st.LostDeliveries, st.DupDeliveries,
		st.DroppedBatches, st.MaxDownsample)
	hosts := make([]int, 0, len(st.HostBatches))
	for h := range st.HostBatches {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	for _, h := range hosts {
		fmt.Fprintf(w, "  host %-4d: %d batches, %d samples\n", h, st.HostBatches[h], st.HostSamples[h])
	}
}

package fleetprof

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"propeller/internal/profile"
)

// hostProfile builds a deterministic synthetic profile for one host:
// nSamples LBR samples whose branch addresses encode (host, index) so
// merged output uniquely identifies every sample's origin.
func hostProfile(host, nSamples int, buildID string) *profile.Profile {
	p := &profile.Profile{Binary: "testbin", BuildID: buildID, Period: 1000}
	for i := 0; i < nSamples; i++ {
		var s profile.Sample
		for r := 0; r < 3; r++ {
			base := uint64(host)<<32 | uint64(i)<<8 | uint64(r)
			s.Records = append(s.Records, profile.Branch{From: base, To: base + 4})
		}
		p.Samples = append(p.Samples, s)
	}
	return p
}

func fleet(hosts, nSamples int, buildID string, batch int) []*Collector {
	var cs []*Collector
	for h := 0; h < hosts; h++ {
		cs = append(cs, &Collector{Host: h, Profile: hostProfile(h, nSamples, buildID), BatchSamples: batch})
	}
	return cs
}

func encodeProfile(t *testing.T, p *profile.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestMergedProfileBitIdentical is the core determinism claim: the merged
// fleet profile is byte-identical at every shard/worker count and under
// injected loss and duplication.
func TestMergedProfileBitIdentical(t *testing.T) {
	const hosts, samples = 7, 50
	var want []byte
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4} {
			for _, faults := range []Transport{
				{},
				{LossRate: 0.3, DupRate: 0.3, Seed: 42},
			} {
				name := fmt.Sprintf("shards=%d workers=%d loss=%.1f", shards, workers, faults.LossRate)
				svc := NewService(ServiceConfig{Shards: shards, WorkersPerShard: workers})
				st, err := RunFleet(fleet(hosts, samples, "bid", 8), faults, svc)
				if err != nil {
					t.Fatalf("%s: RunFleet: %v", name, err)
				}
				merged, err := svc.MergedProfile()
				if err != nil {
					t.Fatalf("%s: MergedProfile: %v", name, err)
				}
				if got := len(merged.Samples); got != hosts*samples {
					t.Fatalf("%s: merged %d samples, want %d (stats: %+v)", name, got, hosts*samples, st)
				}
				enc := encodeProfile(t, merged)
				if want == nil {
					want = enc
				} else if !bytes.Equal(enc, want) {
					t.Fatalf("%s: merged profile bytes differ from baseline", name)
				}
				if faults.LossRate > 0 && st.LostDeliveries == 0 {
					t.Fatalf("%s: expected some lost deliveries", name)
				}
				if faults.DupRate > 0 && st.DupDeliveries == 0 {
					t.Fatalf("%s: expected some duplicated deliveries", name)
				}
			}
		}
	}
}

// TestFaultInjectionNoDoubleCounting: duplicated deliveries must not
// inflate sample counts; lost deliveries must not lose data.
func TestFaultInjectionNoDoubleCounting(t *testing.T) {
	const hosts, samples = 4, 40
	svc := NewService(ServiceConfig{Shards: 2, WorkersPerShard: 2})
	st, err := RunFleet(fleet(hosts, samples, "bid", 4), Transport{LossRate: 0.4, DupRate: 0.5, Seed: 7}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if st.AcceptedSamples != hosts*samples {
		t.Fatalf("accepted %d samples, want %d", st.AcceptedSamples, hosts*samples)
	}
	if st.DupDeliveries == 0 {
		t.Fatal("expected duplicated deliveries at DupRate=0.5")
	}
	if st.DuplicateBatches == 0 {
		t.Fatal("expected server-side duplicate detections")
	}
	if st.LostDeliveries == 0 || st.RetriedSends < st.LostDeliveries {
		t.Fatalf("lost=%d retried=%d: every lost delivery should be retried", st.LostDeliveries, st.RetriedSends)
	}
	// Duplicates were detected, never stored: accepted batch count is
	// exactly the unique batch count.
	wantBatches := int64(hosts * ((samples + 3) / 4))
	if st.AcceptedBatches != wantBatches {
		t.Fatalf("accepted %d batches, want %d", st.AcceptedBatches, wantBatches)
	}
}

// TestBuildIDRejection: a host running a stale binary is rejected and
// counted, and its samples never reach the merged profile.
func TestBuildIDRejection(t *testing.T) {
	svc := NewService(ServiceConfig{BuildID: "current"})
	cs := fleet(3, 10, "current", 4)
	cs[1].Profile = hostProfile(1, 10, "stale") // host 1 runs an old build
	st, err := RunFleet(cs, Transport{}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if st.RejectedBuildID != 3 { // 10 samples / batch 4 = 3 batches
		t.Fatalf("RejectedBuildID = %d, want 3", st.RejectedBuildID)
	}
	if st.AcceptedSamples != 20 {
		t.Fatalf("accepted %d samples, want 20 (hosts 0 and 2 only)", st.AcceptedSamples)
	}
	merged, err := svc.MergedProfile()
	if err != nil {
		t.Fatalf("MergedProfile: %v", err)
	}
	for _, s := range merged.Samples {
		if s.Records[0].From>>32 == 1 {
			t.Fatal("merged profile contains samples from the rejected host")
		}
	}
	if _, ok := st.HostBatches[1]; ok {
		t.Fatal("rejected host should have no accepted batches in coverage map")
	}
}

// TestBackpressure: a depth-1 queue with a slow worker forces queue-full
// rejects and client retries, yet the run converges with every sample
// counted exactly once.
func TestBackpressure(t *testing.T) {
	svc := NewService(ServiceConfig{QueueDepth: 1, IngestDelay: 200 * time.Microsecond})
	st, err := RunFleet(fleet(4, 30, "bid", 2), Transport{}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if st.QueueFullRejects == 0 {
		t.Fatal("expected queue-full rejects with depth-1 queue and slow worker")
	}
	if st.StallSeconds <= 0 {
		t.Fatal("expected client stall time from backoff")
	}
	if st.AcceptedSamples != 4*30 {
		t.Fatalf("accepted %d samples, want %d", st.AcceptedSamples, 4*30)
	}
}

// TestCorruptBatchCounted: garbage payloads are counted, not crashed on.
func TestCorruptBatchCounted(t *testing.T) {
	svc := NewService(ServiceConfig{})
	if err := svc.Submit(Batch{Host: 0, Seq: 0, Payload: []byte("garbage")}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	svc.Drain()
	st := svc.Stats()
	if st.CorruptBatches != 1 || st.AcceptedBatches != 0 {
		t.Fatalf("corrupt=%d accepted=%d, want 1/0", st.CorruptBatches, st.AcceptedBatches)
	}
}

// TestEmptyHostStillCovered: a host with no samples ships one empty batch
// so coverage accounting sees it.
func TestEmptyHostStillCovered(t *testing.T) {
	svc := NewService(ServiceConfig{})
	cs := []*Collector{{Host: 5, Profile: &profile.Profile{Binary: "b", BuildID: "bid", Period: 10}}}
	st, err := RunFleet(cs, Transport{}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if st.HostBatches[5] != 1 {
		t.Fatalf("HostBatches[5] = %d, want 1", st.HostBatches[5])
	}
}

func TestGate(t *testing.T) {
	svc := NewService(ServiceConfig{})
	_, err := RunFleet(fleet(4, 25, "bid", 8), Transport{}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if rep := svc.Ready(Gate{MinSamples: 100}, nil, 4); !rep.Ready {
		t.Fatalf("gate should open at 100 samples (have %d): %s", rep.Samples, rep.Reason)
	}
	if rep := svc.Ready(Gate{MinSamples: 101}, nil, 4); rep.Ready {
		t.Fatal("gate should stay closed below MinSamples")
	} else if !strings.Contains(rep.Reason, "samples") {
		t.Fatalf("unexpected reason: %q", rep.Reason)
	}
	if rep := svc.Ready(Gate{MinHostCoverage: 0.9}, nil, 8); rep.Ready {
		t.Fatal("gate should stay closed at 4/8 host coverage")
	} else if rep.HostCoverage != 0.5 {
		t.Fatalf("HostCoverage = %v, want 0.5", rep.HostCoverage)
	}
	if rep := svc.Ready(Gate{MinHostCoverage: 0.5}, nil, 8); !rep.Ready {
		t.Fatalf("gate should open at exactly 0.5 coverage: %s", rep.Reason)
	}
}

func TestStatusz(t *testing.T) {
	svc := NewService(ServiceConfig{Shards: 2, BuildID: "abcdef0123456789abcdef"})
	_, err := RunFleet(fleet(2, 10, "abcdef0123456789abcdef", 4), Transport{}, svc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	var buf bytes.Buffer
	svc.Statusz(&buf)
	out := buf.String()
	for _, want := range []string{"2 shards", "accepted=6", "samples: 20", "host 0", "host 1", "serving build ID"} {
		if !strings.Contains(out, want) {
			t.Fatalf("statusz missing %q:\n%s", want, out)
		}
	}
}

// TestMakespanMonotone: the modeled makespan must not increase with shard
// count, and modeled quantities must be identical run to run.
func TestMakespanMonotone(t *testing.T) {
	var base IngestStats
	for trial := 0; trial < 2; trial++ {
		svc := NewService(ServiceConfig{Shards: 3, WorkersPerShard: 2})
		st, err := RunFleet(fleet(8, 64, "bid", 8), Transport{LossRate: 0.2, Seed: 3}, svc)
		if err != nil {
			t.Fatalf("RunFleet: %v", err)
		}
		if trial == 0 {
			base = st
		} else {
			if st.ModeledSendSeconds != base.ModeledSendSeconds ||
				st.MaxHostSendSeconds != base.MaxHostSendSeconds ||
				st.ModeledIngestSeconds != base.ModeledIngestSeconds ||
				st.MaxBatchIngestSeconds != base.MaxBatchIngestSeconds {
				t.Fatalf("modeled time not reproducible across runs:\n%+v\nvs\n%+v", base, st)
			}
		}
		prev := st.ModeledMakespan(1)
		for shards := 2; shards <= 16; shards *= 2 {
			cur := st.ModeledMakespan(shards)
			if cur > prev {
				t.Fatalf("makespan increased from %g (shards=%d) to %g (shards=%d)", prev, shards/2, cur, shards)
			}
			prev = cur
		}
	}
}

// TestRetryBudgetCap pins the bounded-attempt contract: a shard that stays
// full for a batch's whole MaxAttempts budget drops the batch — counted in
// DroppedBatches, never hanging the host — and sustained drops double the
// collector's downsampling divisor.
func TestRetryBudgetCap(t *testing.T) {
	// Depth-1 queue whose single worker sleeps long enough that the queue
	// stays full for every collector attempt below.
	svc := NewService(ServiceConfig{QueueDepth: 1, IngestDelay: 300 * time.Millisecond})
	// Wedge the shard: one batch busies the worker, one fills the queue.
	for i := 0; i < 2; i++ {
		for {
			if err := svc.Submit(Batch{Host: 99, Seq: i, Payload: []byte("junk")}); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	preRejects := svc.Stats().QueueFullRejects // prefill may have bounced too

	const maxAttempts = 5
	c := &Collector{
		Host:            0,
		Profile:         hostProfile(0, 8, "bid"),
		BatchSamples:    4, // 2 batches
		Backoff:         100 * time.Microsecond,
		MaxAttempts:     maxAttempts,
		AdaptAfterDrops: 1,
	}
	cs, err := c.Run(Transport{}, svc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	svc.foldClient(cs)
	svc.Drain()
	st := svc.Stats()

	if cs.Dropped != 2 || st.DroppedBatches != 2 {
		t.Fatalf("Dropped = %d (stats %d), want 2", cs.Dropped, st.DroppedBatches)
	}
	if cs.Sent != 0 {
		t.Fatalf("Sent = %d, want 0 (every batch met a wedged shard)", cs.Sent)
	}
	// The cap itself: exactly MaxAttempts submits per batch, so the
	// queue-full counter pins the budget.
	if got, want := st.QueueFullRejects-preRejects, int64(2*maxAttempts); got != want {
		t.Fatalf("QueueFullRejects = %d, want %d (MaxAttempts=%d x 2 batches)", got, want, maxAttempts)
	}
	if want := int64(2 * (maxAttempts - 1)); cs.Retried != want {
		t.Fatalf("Retried = %d, want %d", cs.Retried, want)
	}
	// Sampling-rate adaptation: one doubling per drop at AdaptAfterDrops=1.
	if cs.Downsample != 4 || st.MaxDownsample != 4 {
		t.Fatalf("Downsample = %d (stats %d), want 4 after 2 drops", cs.Downsample, st.MaxDownsample)
	}
}

// TestThin pins the adaptation's sample selection: every d-th sample, ages
// preserved, no bias toward either end of the window.
func TestThin(t *testing.T) {
	p := hostProfile(0, 10, "bid")
	if got := thinAppend(nil, p.Samples, 1); len(got) != 10 {
		t.Fatalf("thin(1) = %d samples, want 10", len(got))
	}
	got := thinAppend(nil, p.Samples, 4)
	if len(got) != 3 {
		t.Fatalf("thin(4) = %d samples, want 3", len(got))
	}
	for i, s := range got {
		wantIdx := uint64(i * 4)
		if idx := (s.Records[0].From >> 8) & 0xffffff; idx != wantIdx {
			t.Fatalf("thin(4)[%d] is source sample %d, want %d", i, idx, wantIdx)
		}
	}
}

// TestStatuszHandler is the httptest smoke test for the shared HTTP
// snapshot both profsvc and wsc-propeller -statusz-addr serve.
func TestStatuszHandler(t *testing.T) {
	svc := NewService(ServiceConfig{Shards: 2, BuildID: "deadbeefcafe0123"})
	if _, err := RunFleet(fleet(2, 10, "deadbeefcafe0123", 4), Transport{}, svc); err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	ts := httptest.NewServer(svc.StatuszHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	for _, want := range []string{"2 shards", "serving build ID", "samples: 20"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("statusz body missing %q:\n%s", want, body)
		}
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/statusz", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /statusz: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp2.StatusCode)
	}
}

// TestTransportPlanDeterministic: the fault plan is a pure function of
// (seed, host, seq).
func TestTransportPlanDeterministic(t *testing.T) {
	tr := Transport{LossRate: 0.5, DupRate: 0.5, Seed: 99}
	anyLost, anyDup := false, false
	for host := 0; host < 10; host++ {
		for seq := 0; seq < 10; seq++ {
			l1, d1 := tr.plan(host, seq)
			l2, d2 := tr.plan(host, seq)
			if l1 != l2 || d1 != d2 {
				t.Fatalf("plan(%d,%d) not deterministic", host, seq)
			}
			anyLost = anyLost || l1 > 0
			anyDup = anyDup || d1
		}
	}
	if !anyLost || !anyDup {
		t.Fatal("expected both losses and dups at 0.5 rates over 100 batches")
	}
	if l, _ := (Transport{LossRate: 1, MaxLostAttempts: 5}).plan(0, 0); l != 5 {
		t.Fatalf("loss cap: got %d lost attempts, want 5", l)
	}
}

// TestCollectorEncodeAllocAmortized pins the batch wire path: with the
// reused window and encode buffers in place, shipping K times as many
// batches through one collector run must cost only per-batch constants
// (the payload copy that crosses into the service queues, plus the
// service side's stored batch), never per-sample or per-record encode
// allocations. A regression to per-record allocation would multiply the
// marginal rate by the ~192 records per batch and trip the bound.
func TestCollectorEncodeAllocAmortized(t *testing.T) {
	measure := func(batches int) float64 {
		p := hostProfile(0, batches*64, "")
		return testing.AllocsPerRun(3, func() {
			svc := NewService(ServiceConfig{QueueDepth: batches + 8})
			c := &Collector{Host: 0, Profile: p, BatchSamples: 64}
			if _, err := c.Run(Transport{}, svc); err != nil {
				t.Fatal(err)
			}
			svc.Drain()
			if got := svc.Stats().AcceptedBatches; got != int64(batches) {
				t.Fatalf("accepted %d batches, want %d", got, batches)
			}
		})
	}
	small, big := measure(4), measure(64)
	perBatch := (big - small) / 60
	if perBatch > 24 {
		t.Errorf("%.1f marginal allocs per batch (%.0f at 4 batches, %.0f at 64), want <= 24",
			perBatch, small, big)
	}
}

package fleetprof

import "net/http"

// StatuszHandler serves the /statusz snapshot over HTTP — the same
// plain-text rendering Statusz writes, promoted to a shared http.Handler
// so both the continuous profile-build service (internal/profsvc) and the
// wsc-propeller -statusz-addr debug endpoint expose one format. Safe to
// serve while ingestion is running; mid-run snapshots are momentary.
func (s *Service) StatuszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Statusz(w)
	})
}

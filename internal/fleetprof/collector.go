package fleetprof

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"propeller/internal/profile"
)

// Modeled cost constants for the collection/ingestion tier. Same style as
// the core phase model: small constants that make relative comparisons
// (shard scaling, loss overhead) meaningful without real network time.
const (
	// SendLatencySeconds is the per-delivery-attempt network latency.
	SendLatencySeconds = 1e-3
	// SendPerByteSeconds models payload serialization + wire time.
	SendPerByteSeconds = 2e-9
	// RetryTimeoutSeconds is the client timeout charged for each lost
	// delivery before it retries.
	RetryTimeoutSeconds = 10e-3
	// IngestBatchBaseSeconds is the per-batch decode/validate overhead.
	IngestBatchBaseSeconds = 200e-6
	// IngestPerRecordSeconds is the per-LBR-record aggregation cost.
	IngestPerRecordSeconds = 2e-7
)

// Transport is the in-process fleet network model. Loss and duplication
// are decided by a deterministic hash of (seed, host, seq, attempt) — not
// by a shared RNG — so the fault pattern a batch sees is a pure function
// of its identity, independent of goroutine scheduling and of how many
// queue-full retries the client needed. That keeps every modeled quantity
// bit-reproducible under -race at any worker count.
type Transport struct {
	// LossRate in [0,1) is the probability a delivery attempt is lost in
	// transit (the client times out and resends).
	LossRate float64
	// DupRate in [0,1) is the probability the network delivers an extra
	// copy of a batch (e.g. a timeout-resend crossing a late ack).
	DupRate float64
	// Seed perturbs the fault pattern; same seed, same faults.
	Seed uint64
	// MaxLostAttempts caps consecutive modeled losses per batch
	// (default 16) so pathological rates still terminate.
	MaxLostAttempts int
}

func (t Transport) maxLost() int {
	if t.MaxLostAttempts < 1 {
		return 16
	}
	return t.MaxLostAttempts
}

// plan returns the deterministic fault plan for one batch: how many
// delivery attempts are lost before one succeeds, and whether the network
// duplicates the successful delivery.
func (t Transport) plan(host, seq int) (lost int, dup bool) {
	if t.LossRate > 0 {
		for lost < t.maxLost() {
			h := splitmix64(t.Seed ^ uint64(host)<<40 ^ uint64(uint32(seq))<<8 ^ uint64(lost))
			if hashFrac(h) >= t.LossRate {
				break
			}
			lost++
		}
	}
	if t.DupRate > 0 {
		h := splitmix64(t.Seed ^ 0xd1b54a32d192ed03 ^ uint64(host)<<40 ^ uint64(uint32(seq))<<8)
		dup = hashFrac(h) < t.DupRate
	}
	return lost, dup
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFrac maps a hash to [0,1) with 53 uniform bits.
func hashFrac(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// SampleSource supplies one host's sample stream to its collector. The
// two implementations are a materialized profile (ProfileSource) and a
// live simulation pushing samples from its run callback — the streaming
// mode that overlaps host CPU with the ingestion pipeline. Record slices
// passed to emit are only read during the call; the collector copies what
// it batches.
type SampleSource interface {
	// Header returns the stream's profile metadata, known before any
	// sample; its Samples count is ignored.
	Header() profile.Header
	// Samples drives the stream, calling emit once per sample in order.
	// An error from emit must abort the stream and be returned.
	Samples(emit func(profile.Sample) error) error
}

// ProfileSource adapts a materialized profile to SampleSource.
type ProfileSource struct {
	P *profile.Profile
}

// Header implements SampleSource.
func (ps ProfileSource) Header() profile.Header {
	return profile.Header{Binary: ps.P.Binary, BuildID: ps.P.BuildID, Period: ps.P.Period}
}

// Samples implements SampleSource.
func (ps ProfileSource) Samples(emit func(profile.Sample) error) error {
	for _, s := range ps.P.Samples {
		if err := emit(s); err != nil {
			return err
		}
	}
	return nil
}

// Collector is one simulated production host shipping its LBR samples to
// the ingestion service in sequenced batches.
type Collector struct {
	// Host is this collector's fleet-unique identity; with Seq it forms
	// the idempotency key on every batch.
	Host int
	// Profile holds the host's local samples (from a sim run with this
	// host's LBRPhase). Ignored when Source is set.
	Profile *profile.Profile
	// Source, when non-nil, supplies the sample stream instead of
	// Profile — the streaming path that ships batches while the host's
	// simulation is still executing. Batch identity ((host, seq) over
	// consecutive BatchSamples-sized windows of the stream), the
	// transport fault plan, and every modeled stat are the same in both
	// modes, so the service's merged profile is byte-identical.
	Source SampleSource
	// BatchSamples is the number of samples per batch (default 64).
	BatchSamples int
	// Backoff is the initial real sleep after a queue-full reject
	// (default 100µs, doubling up to 100× initial).
	Backoff time.Duration
	// MaxAttempts bounds total Submit attempts per batch (default 16). A
	// shard that stays full for the whole budget drops the batch — counted
	// in CollectorStats.Dropped, surfaced as IngestStats.DroppedBatches —
	// instead of wedging the host forever behind one sick shard.
	MaxAttempts int
	// AdaptAfterDrops is the sustained-backpressure threshold for
	// sampling-rate adaptation (default 2): once that many consecutive
	// batches have been dropped on a full queue, the collector doubles its
	// downsampling — shipping every 2nd, then 4th, ... sample — so a
	// congested ingestion tier receives a thinner, still-unbiased stream
	// instead of a firehose it keeps rejecting. A successfully delivered
	// batch resets the consecutive-drop counter (but not the rate: the
	// fleet operator resets rates by redeploying collectors).
	AdaptAfterDrops int
}

// CollectorStats is one host's client-side accounting.
type CollectorStats struct {
	Sent    int64 // batches accepted into a queue at least once
	Retried int64 // resends: lost-delivery retries + queue-full retries
	Lost    int64 // delivery attempts lost in transit (modeled)
	Dup     int64 // extra copies the network delivered
	// Dropped counts batches abandoned after the MaxAttempts budget: the
	// bounded-retry contract that keeps a wedged shard from hanging a host.
	Dropped int64
	// Downsample is the final sampling-rate divisor after adaptation
	// (1 = full rate; 2/4/8... after sustained queue-full drops).
	Downsample int64
	// StallSeconds is real time spent sleeping in queue-full backoff.
	StallSeconds float64
	// ModeledSendSeconds is this host's deterministic send-path time:
	// per-attempt latency + wire time, plus a timeout charge per lost
	// attempt. Queue-full retries do not contribute (they are real
	// scheduling noise, not part of the reproducible model).
	ModeledSendSeconds float64
}

func (c *Collector) batchSamples() int {
	if c.BatchSamples < 1 {
		return 64
	}
	return c.BatchSamples
}

func (c *Collector) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 100 * time.Microsecond
	}
	return c.Backoff
}

func (c *Collector) maxAttempts() int {
	if c.MaxAttempts < 1 {
		return 16
	}
	return c.MaxAttempts
}

func (c *Collector) adaptAfterDrops() int {
	if c.AdaptAfterDrops < 1 {
		return 2
	}
	return c.AdaptAfterDrops
}

// Run ships the host's sample stream through the transport to the
// service in sequenced batches, honoring backpressure. With a Source it
// consumes samples as they are produced (batches leave while the host's
// simulation is still running); with a materialized Profile it streams
// over the stored samples — the two paths share every byte of batching,
// encoding and delivery logic. Each batch gets a bounded delivery-attempt
// budget: a batch the queue keeps rejecting is dropped (counted, never
// silently) instead of hanging the host, and sustained drops double the
// collector's downsampling so the stream thins to what the service can
// absorb.
func (c *Collector) Run(t Transport, svc *Service) (CollectorStats, error) {
	st := CollectorStats{Downsample: 1}
	src := c.Source
	if src == nil {
		if c.Profile == nil {
			return st, fmt.Errorf("fleetprof: collector host %d has no profile", c.Host)
		}
		src = ProfileSource{c.Profile}
	}
	bs := c.batchSamples()
	r := &collectorRun{
		c: c, t: t, svc: svc, st: &st,
		hdr:        src.Header(),
		bs:         bs,
		window:     make([]profile.Sample, 0, bs),
		windowRecs: make([]profile.Branch, 0, bs*profile.LBRDepth),
	}
	if err := src.Samples(r.add); err != nil {
		return st, err
	}
	// Ship the final partial window; an empty stream still ships one
	// empty batch so the host's presence registers with the service.
	if len(r.window) > 0 || r.seq == 0 {
		if err := r.ship(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// collectorRun is the per-Run batching state: the current window of
// samples (records copied into a reused flat buffer — emit slices are
// only valid during the callback) and the reused encode buffers that make
// the batch wire path allocation-free apart from the payload itself,
// which must be owned by the in-flight batch.
type collectorRun struct {
	c   *Collector
	t   Transport
	svc *Service
	st  *CollectorStats
	hdr profile.Header
	bs  int

	window     []profile.Sample
	windowRecs []profile.Branch
	thinBuf    []profile.Sample
	encBuf     []byte

	seq         int
	consecDrops int
}

func (r *collectorRun) add(s profile.Sample) error {
	l := len(r.windowRecs)
	r.windowRecs = append(r.windowRecs, s.Records...)
	// If append moved the backing array, earlier window samples keep
	// pointing into the old block — still intact, still correct.
	r.window = append(r.window, profile.Sample{Records: r.windowRecs[l:len(r.windowRecs):len(r.windowRecs)]})
	if len(r.window) == r.bs {
		return r.ship()
	}
	return nil
}

// ship encodes and delivers the current window as batch (host, seq),
// then resets the window. Identical accounting to the materialized path:
// seq advances even for dropped batches.
func (r *collectorRun) ship() error {
	c, st := r.c, r.st
	shipped := r.window
	if st.Downsample > 1 {
		r.thinBuf = thinAppend(r.thinBuf[:0], r.window, st.Downsample)
		shipped = r.thinBuf
	}
	chunk := profile.Profile{
		Binary:  r.hdr.Binary,
		BuildID: r.hdr.BuildID,
		Period:  r.hdr.Period,
		Samples: shipped,
	}
	r.encBuf = chunk.AppendWire(r.encBuf[:0])
	// The payload crosses into the service's queues and is decoded
	// asynchronously, so it must own its bytes: one exact-size copy, the
	// only per-batch allocation on the wire path.
	payload := append([]byte(nil), r.encBuf...)
	seq := r.seq
	r.seq++
	r.window = r.window[:0]
	r.windowRecs = r.windowRecs[:0]

	lost, dup := r.t.plan(c.Host, seq)
	st.Lost += int64(lost)
	st.Retried += int64(lost)
	attemptCost := SendLatencySeconds + float64(len(payload))*SendPerByteSeconds
	st.ModeledSendSeconds += float64(lost+1)*attemptCost + float64(lost)*RetryTimeoutSeconds

	dropped, err := c.deliver(r.svc, Batch{Host: c.Host, Seq: seq, Payload: payload}, st)
	if err != nil {
		return err
	}
	if dropped {
		st.Dropped++
		r.consecDrops++
		if r.consecDrops >= c.adaptAfterDrops() {
			st.Downsample *= 2
			r.consecDrops = 0
		}
		return nil
	}
	r.consecDrops = 0
	st.Sent++
	if dup {
		st.Dup++
		// A network-duplicated copy: best-effort, never retried. If
		// the queue is full the duplicate simply vanishes — the
		// original already made it in.
		_ = r.svc.Submit(Batch{Host: c.Host, Seq: seq, Payload: payload})
	}
	return nil
}

// thinAppend keeps every d-th sample of a batch window, appending into
// dst — the unbiased sampling-rate adaptation a collector applies under
// sustained backpressure (d doubles after AdaptAfterDrops consecutive
// drops).
func thinAppend(dst, samples []profile.Sample, d int64) []profile.Sample {
	for i := 0; i < len(samples); i += int(d) {
		dst = append(dst, samples[i])
	}
	return dst
}

// deliver submits one batch with exponential backoff on queue-full, under
// a hard attempt budget. It reports dropped=true when the budget ran out
// with the queue still full.
func (c *Collector) deliver(svc *Service, b Batch, st *CollectorStats) (dropped bool, err error) {
	backoff := c.backoff()
	maxBackoff := 100 * c.backoff()
	for attempt := 1; ; attempt++ {
		err := svc.Submit(b)
		if err == nil {
			return false, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			return false, err
		}
		if attempt >= c.maxAttempts() {
			return true, nil
		}
		st.Retried++
		st.StallSeconds += backoff.Seconds()
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// RunFleet runs every collector concurrently against the service, drains
// the queues, and folds the client-side stats into the service's. The
// returned stats are final. Collector errors are reported lowest-host
// first so failures are deterministic too.
func RunFleet(collectors []*Collector, t Transport, svc *Service) (IngestStats, error) {
	errs := make([]error, len(collectors))
	stats := make([]CollectorStats, len(collectors))
	var wg sync.WaitGroup
	for i, c := range collectors {
		wg.Add(1)
		go func(i int, c *Collector) {
			defer wg.Done()
			stats[i], errs[i] = c.Run(t, svc)
		}(i, c)
	}
	wg.Wait()
	// Fold in collector order, not completion order: the aggregate sums
	// floats (ModeledSendSeconds), and float addition is order-dependent
	// in the last ulp — folding as goroutines finish would make the
	// modeled time irreproducible across runs.
	for _, cs := range stats {
		svc.foldClient(cs)
	}
	svc.Drain()
	for _, err := range errs {
		if err != nil {
			return svc.Stats(), err
		}
	}
	return svc.Stats(), nil
}

// ModeledMakespan is the modeled wall time of the fleet run at the given
// shard count: the slowest host's send path, then the ingest work divided
// across shards — floored by the single largest batch, which no amount of
// sharding subdivides. Monotone non-increasing in shards by construction.
func (st IngestStats) ModeledMakespan(shards int) float64 {
	if shards < 1 {
		shards = 1
	}
	ingest := st.ModeledIngestSeconds / float64(shards)
	if st.MaxBatchIngestSeconds > ingest {
		ingest = st.MaxBatchIngestSeconds
	}
	return st.MaxHostSendSeconds + ingest
}

package fleetprof

import (
	"fmt"

	"propeller/internal/bbaddrmap"
)

// Gate is the admission policy deciding when the fleet profile is good
// enough to hand to the whole-program analysis. A warehouse fleet trickles
// samples in continuously; relinking on a thin profile wastes a build and
// can mis-lay-out the binary, so Phase 3 waits for the gate to open.
type Gate struct {
	// MinSamples is the minimum total accepted samples (0 disables).
	MinSamples int64
	// MinHotFuncs is the minimum number of distinct functions observed
	// in the accepted samples (0 disables). Requires a bb-address-map
	// lookup to resolve sample addresses.
	MinHotFuncs int
	// MinHostCoverage in [0,1] is the minimum fraction of expected hosts
	// that contributed at least one accepted batch (0 disables).
	MinHostCoverage float64
}

// GateReport says whether the gate is open and why/why not.
type GateReport struct {
	Ready        bool    `json:"ready"`
	Samples      int64   `json:"samples"`
	HotFuncs     int     `json:"hotFuncs"`
	HostCoverage float64 `json:"hostCoverage"`
	Reason       string  `json:"reason,omitempty"`
}

// Ready evaluates the gate against the service's accepted batches. lk may
// be nil when no bb-address-map is available, in which case the
// hot-function criterion is skipped. expectedHosts sizes the coverage
// denominator (<=0 skips the coverage criterion). Safe to call while
// ingestion is still running: it reports on what has been accepted so far.
func (s *Service) Ready(g Gate, lk *bbaddrmap.Lookup, expectedHosts int) GateReport {
	rep := GateReport{Ready: true}
	hosts := map[int]bool{}
	funcs := map[string]bool{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, b := range sh.batches {
			if b.rejected {
				continue
			}
			hosts[k.host] = true
			rep.Samples += int64(len(b.samples))
			if lk != nil && g.MinHotFuncs > 0 {
				for _, smp := range b.samples {
					for _, r := range smp.Records {
						if fn, _, ok := lk.Resolve(r.From); ok {
							funcs[fn] = true
						}
						if fn, _, ok := lk.Resolve(r.To); ok {
							funcs[fn] = true
						}
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	rep.HotFuncs = len(funcs)
	if expectedHosts > 0 {
		rep.HostCoverage = float64(len(hosts)) / float64(expectedHosts)
	}
	if g.MinSamples > 0 && rep.Samples < g.MinSamples {
		rep.Ready = false
		rep.Reason = fmt.Sprintf("samples %d < min %d", rep.Samples, g.MinSamples)
	} else if g.MinHotFuncs > 0 && lk != nil && rep.HotFuncs < g.MinHotFuncs {
		rep.Ready = false
		rep.Reason = fmt.Sprintf("hot functions %d < min %d", rep.HotFuncs, g.MinHotFuncs)
	} else if g.MinHostCoverage > 0 && expectedHosts > 0 && rep.HostCoverage < g.MinHostCoverage {
		rep.Ready = false
		rep.Reason = fmt.Sprintf("host coverage %.2f < min %.2f", rep.HostCoverage, g.MinHostCoverage)
	}
	return rep
}
